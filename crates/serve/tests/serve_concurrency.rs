//! End-to-end service tests over real sockets: boot on an ephemeral
//! port, drive the API from many concurrent client threads, and check
//! the three properties the service exists to provide — correct typed
//! errors, the capture-once invariant under a request storm, and a
//! clean graceful drain.
//!
//! Every test builds its own in-memory [`Experiments`] (no disk cache,
//! no trace store) so nothing leaks between tests or into the repo's
//! cache directories.

use graphpim::config::PimMode;
use graphpim::experiments::cache::json;
use graphpim::experiments::{figjson, Experiments, RunKey};
use graphpim_graph::generate::LdbcSize;
use graphpim_serve::http::client;
use graphpim_serve::{AdmissionPolicy, ServeConfig, ServerHandle};
use std::sync::Arc;

/// Boots a service at 1k scale on an ephemeral port with an isolated
/// in-memory engine. Returns the handle, its address, and the engine.
fn boot(policy: AdmissionPolicy) -> (ServerHandle, String, Arc<Experiments>) {
    let ctx = Arc::new(Experiments::with_cache(LdbcSize::K1, None).with_trace_store(None));
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        http_threads: 8,
        policy,
        ..ServeConfig::default()
    };
    let handle = graphpim_serve::start(cfg, Arc::clone(&ctx)).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr, ctx)
}

fn get_json(addr: &str, path: &str) -> (u16, json::Value) {
    let (status, body) = client::get(addr, path).expect("request");
    let text = String::from_utf8(body).expect("UTF-8 body");
    let value = json::parse(&text).unwrap_or_else(|| panic!("{path} must answer JSON: {text}"));
    (status, value)
}

fn error_id(doc: &json::Value) -> String {
    doc.as_object()
        .and_then(|o| o.get("error")?.as_object()?.get("id")?.as_str())
        .unwrap_or_else(|| panic!("expected an error document"))
        .to_string()
}

#[test]
fn boot_health_stats_and_typed_errors() {
    let (handle, addr, _ctx) = boot(AdmissionPolicy::default());

    let (status, health) = get_json(&addr, "/healthz");
    assert_eq!(status, 200);
    let health = health.as_object().unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("scale").unwrap().as_str(), Some("LDBC-1k"));

    let (status, figures) = get_json(&addr, "/figures");
    assert_eq!(status, 200);
    let listed = figures.as_object().unwrap().get("figures").unwrap();
    let listed: Vec<_> = listed
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|v| v.as_str())
        .collect();
    assert_eq!(listed.len(), figjson::FIGURES.len());
    assert!(listed.contains(&"fig07"));

    // Typed errors, straight from the engine's error catalog.
    let (status, doc) = get_json(&addr, "/counters/not-a-stem");
    assert_eq!((status, error_id(&doc).as_str()), (400, "invalid_run_key"));
    let (status, doc) = get_json(&addr, "/counters/DC-Baseline-LDBC-1k-fus0-bw10");
    assert_eq!((status, error_id(&doc).as_str()), (400, "zero_fus"));
    let valid_uncached = RunKey::new("DC", PimMode::Baseline, LdbcSize::K1).file_stem();
    let (status, doc) = get_json(&addr, &format!("/counters/{valid_uncached}"));
    assert_eq!((status, error_id(&doc).as_str()), (404, "run_uncached"));
    let (status, doc) = get_json(&addr, "/figures/fig99");
    assert_eq!((status, error_id(&doc).as_str()), (404, "unknown_figure"));
    let (status, doc) = get_json(&addr, "/figures/fig07");
    assert_eq!((status, error_id(&doc).as_str()), (409, "figure_uncached"));
    let (status, doc) = get_json(&addr, "/no/such/route");
    assert_eq!((status, error_id(&doc).as_str()), (404, "not_found"));
    let (status, _) = client::post(&addr, "/healthz", "{}").expect("request");
    assert_eq!(status, 404, "POST to a GET-only route is an unknown route");
    let (status, body) =
        client::request(&addr, "PUT", "/healthz", Some(b"{}"), &[]).expect("request");
    assert_eq!(status, 405, "{}", String::from_utf8_lossy(&body));

    let (status, stats) = get_json(&addr, "/stats");
    assert_eq!(status, 200);
    let stats = stats.as_object().unwrap();
    assert!(stats.get("scheduler").is_some());
    assert!(stats.get("engine").is_some());
    assert!(stats.get("cost_model").is_some());

    handle.shutdown();
}

/// The storm test: many clients sweep the *same* two keys at once. The
/// engine's per-key memo must collapse all of that to exactly two
/// simulations (the capture-once invariant, observed through `/stats`),
/// every follower must still see a complete event log ending in `done`,
/// and the drain afterwards must be clean — refused connections, no
/// stuck threads.
#[test]
fn concurrent_sweeps_dedup_to_one_simulation_per_key() {
    const CLIENTS: usize = 16;
    let (handle, addr, _ctx) = boot(AdmissionPolicy::default());
    let stems: Vec<String> = [
        RunKey::new("DC", PimMode::Baseline, LdbcSize::K1),
        RunKey::new("DC", PimMode::GraphPim, LdbcSize::K1),
    ]
    .iter()
    .map(RunKey::file_stem)
    .collect();
    let body = format!(
        "{{\"keys\": [{}]}}",
        stems
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            let body = body.clone();
            std::thread::spawn(move || {
                let client_id = format!("client-{i}");
                let (status, response) = client::request(
                    &addr,
                    "POST",
                    "/sweeps",
                    Some(body.as_bytes()),
                    &[("X-Client-Id", &client_id)],
                )
                .expect("submit sweep");
                let text = String::from_utf8_lossy(&response).to_string();
                assert_eq!(status, 202, "submit must be accepted: {text}");
                let job = json::parse(&text)
                    .and_then(|d| d.as_object()?.get("job")?.as_u64())
                    .expect("acceptance document carries the job id");
                // Follow the stream to the end; the terminal `done`
                // event must arrive for every follower, no matter how
                // the 16 jobs interleaved.
                let mut saw_done = false;
                let status = client::get_streaming(
                    &addr,
                    &format!("/jobs/{job}/events"),
                    &[],
                    &mut |line| {
                        if line.contains("\"event\": \"done\"") {
                            saw_done = true;
                        }
                    },
                )
                .expect("event stream");
                assert_eq!(status, 200);
                assert!(saw_done, "stream must end with the done event");
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }

    // 16 clients x 2 keys, but the memo makes each key simulate once.
    let (status, stats) = get_json(&addr, "/stats");
    assert_eq!(status, 200);
    let engine = stats.as_object().unwrap().get("engine").unwrap();
    let runs = engine.as_object().unwrap().get("runs").unwrap().as_u64();
    assert_eq!(runs, Some(2), "capture-once invariant: {stats:?}");

    // Both counters endpoints serve from cache now.
    for stem in &stems {
        let (status, _) = get_json(&addr, &format!("/counters/{stem}"));
        assert_eq!(status, 200);
    }

    // Graceful drain: POST /shutdown flips the drain flag, the handle
    // joins every thread, and the port stops answering.
    let (status, _) = client::post(&addr, "/shutdown", "{}").expect("shutdown");
    assert_eq!(status, 200);
    assert!(handle.shutdown_requested());
    handle.shutdown();
    assert!(
        client::get(&addr, "/healthz").is_err(),
        "a drained service must refuse connections"
    );
}

#[test]
fn admission_sheds_on_budget_and_client_cap() {
    // Zero queue budget: any uncached submission overflows it.
    let policy = AdmissionPolicy {
        queue_budget_seconds: 0.0,
        ..AdmissionPolicy::default()
    };
    let (handle, addr, _ctx) = boot(policy);
    let stem = RunKey::new("DC", PimMode::Baseline, LdbcSize::K1).file_stem();
    let body = format!("{{\"keys\": [\"{stem}\"]}}");
    let (status, response) =
        client::request(&addr, "POST", "/sweeps", Some(body.as_bytes()), &[]).expect("submit");
    let doc = json::parse(&String::from_utf8_lossy(&response)).expect("shed document");
    assert_eq!(
        (status, error_id(&doc).as_str()),
        (429, "queue_budget_exceeded")
    );
    handle.shutdown();

    // Zero per-client cap: shed before the budget is even consulted.
    let policy = AdmissionPolicy {
        client_inflight_cap: 0,
        ..AdmissionPolicy::default()
    };
    let (handle, addr, _ctx) = boot(policy);
    let (status, response) =
        client::request(&addr, "POST", "/sweeps", Some(body.as_bytes()), &[]).expect("submit");
    let doc = json::parse(&String::from_utf8_lossy(&response)).expect("shed document");
    assert_eq!(
        (status, error_id(&doc).as_str()),
        (429, "client_inflight_cap")
    );
    handle.shutdown();
}

/// The full Figure 7 path: 409 before, streamed sweep with per-run
/// events, then a cached figure that is byte-identical to the shared
/// formatter's output (what `fig07 --json` prints). 24 simulated runs,
/// so release builds only.
#[test]
#[cfg_attr(debug_assertions, ignore = "24 x 1k simulations; run with --release")]
fn fig07_byte_identity_and_streamed_sweep() {
    let (handle, addr, ctx) = boot(AdmissionPolicy::default());

    let (status, doc) = get_json(&addr, "/figures/fig07");
    assert_eq!((status, error_id(&doc).as_str()), (409, "figure_uncached"));

    let (status, response) =
        client::request(&addr, "POST", "/sweeps", Some(b"{\"fig\": \"fig07\"}"), &[])
            .expect("submit");
    let text = String::from_utf8_lossy(&response).to_string();
    assert_eq!(status, 202, "{text}");
    let job = json::parse(&text)
        .and_then(|d| d.as_object()?.get("job")?.as_u64())
        .expect("job id");

    let mut run_events = 0usize;
    let mut saw_done = false;
    let status = client::get_streaming(&addr, &format!("/jobs/{job}/events"), &[], &mut |line| {
        if line.contains("\"event\": \"run\"") {
            run_events += 1;
        }
        if line.contains("\"event\": \"done\"") {
            saw_done = true;
        }
    })
    .expect("event stream");
    assert_eq!(status, 200);
    assert!(saw_done);
    let expected_runs = figjson::figure_keys("fig07", &ctx).unwrap().len();
    assert_eq!(run_events, expected_runs, "one run event per sweep key");

    // Byte identity with the shared formatter — the same bytes the
    // `fig07 --json` CLI prints.
    let (status, served) = client::get(&addr, "/figures/fig07").expect("cached figure");
    assert_eq!(status, 200);
    let reference = figjson::figure_json("fig07", &ctx).expect("formatter output");
    assert_eq!(String::from_utf8(served).unwrap(), reference);

    handle.shutdown();
}
