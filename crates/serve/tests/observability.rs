//! End-to-end observability tests: the `/metrics` exposition (golden
//! family set + strict lint on a live scrape), the enriched `/healthz`
//! and `/stats` documents, and request-correlated trace IDs flowing
//! from the HTTP acceptor through the scheduler into job events and
//! run records.
//!
//! Like `serve_concurrency.rs`, every test boots its own in-memory
//! engine on an ephemeral port, so nothing leaks between tests or into
//! the repo's cache directories.

use graphpim::config::PimMode;
use graphpim::experiments::cache::json;
use graphpim::experiments::{Experiments, RunKey};
use graphpim::obs::prom;
use graphpim_graph::generate::LdbcSize;
use graphpim_serve::http::client;
use graphpim_serve::{AdmissionPolicy, ServeConfig, ServerHandle};
use std::sync::Arc;

fn boot() -> (ServerHandle, String, Arc<Experiments>) {
    let ctx = Arc::new(Experiments::with_cache(LdbcSize::K1, None).with_trace_store(None));
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        http_threads: 8,
        policy: AdmissionPolicy::default(),
        ..ServeConfig::default()
    };
    let handle = graphpim_serve::start(cfg, Arc::clone(&ctx)).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr, ctx)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// The golden scrape: every family the endpoint promises is present,
/// the document passes the strict exposition lint, and counters that
/// just changed (a completed sweep) are reflected.
#[test]
fn metrics_scrape_is_lintable_and_carries_the_golden_family_set() {
    let (handle, addr, _ctx) = boot();

    // Run one single-key sweep to completion so engine/job counters
    // are nonzero and the latency histograms have samples.
    let stem = RunKey::new("DC", PimMode::Baseline, LdbcSize::K1).file_stem();
    let body = format!("{{\"keys\": [\"{stem}\"]}}");
    let (status, response) =
        client::request(&addr, "POST", "/sweeps", Some(body.as_bytes()), &[]).expect("submit");
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&response));
    let job = json::parse(&String::from_utf8_lossy(&response))
        .and_then(|d| d.as_object()?.get("job")?.as_u64())
        .expect("job id");
    let status = client::get_streaming(&addr, &format!("/jobs/{job}/events"), &[], &mut |_| {})
        .expect("event stream");
    assert_eq!(status, 200);

    let (status, headers, body) =
        client::request_full(&addr, "GET", "/metrics", None, &[]).expect("scrape");
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = String::from_utf8(body).expect("UTF-8 exposition");

    // Strict lint on the live scrape: grammar, HELP/TYPE coverage,
    // family contiguity, no duplicate series, histogram consistency.
    if let Err(errors) = prom::lint(&text) {
        panic!("exposition lint failed: {errors:?}\n{text}");
    }

    // Golden family set.
    for family in [
        "graphpim_build_info",
        "graphpim_uptime_seconds",
        "graphpim_draining",
        "graphpim_scheduler_queue_depth",
        "graphpim_scheduler_queued_cost_seconds",
        "graphpim_scheduler_jobs_retained",
        "graphpim_jobs_submitted_total",
        "graphpim_jobs_completed_total",
        "graphpim_units_resolved_total",
        "graphpim_units_panicked_total",
        "graphpim_admission_shed_total",
        "graphpim_engine_runs_total",
        "graphpim_engine_simulated_seconds_total",
        "graphpim_disk_cache_lookups_total",
        "graphpim_tracestore_captures",
        "graphpim_tracestore_replays",
        "graphpim_http_request_duration_micros",
        "graphpim_log_lines_total",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "missing family {family}:\n{text}"
        );
    }

    // The sweep that just finished is visible in the counters.
    assert!(text.contains("graphpim_jobs_submitted_total 1"), "{text}");
    assert!(text.contains("graphpim_jobs_completed_total 1"), "{text}");
    assert!(text.contains("graphpim_units_resolved_total 1"), "{text}");
    assert!(
        text.contains("graphpim_engine_runs_total{source=\"simulated\"} 1"),
        "{text}"
    );
    for reason in ["draining", "queue_budget_exceeded", "client_inflight_cap"] {
        assert!(
            text.contains(&format!(
                "graphpim_admission_shed_total{{reason=\"{reason}\"}}"
            )),
            "shed reason {reason} missing:\n{text}"
        );
    }
    // The POST /sweeps latency histogram recorded the submission.
    assert!(
        text.contains("graphpim_http_request_duration_micros_count{endpoint=\"POST /sweeps\"} 1"),
        "{text}"
    );

    handle.shutdown();
}

/// A trace ID supplied by the client is honored and surfaces at every
/// layer: the response header, the acceptance document, the job
/// snapshot, every job event, and the engine's run records. A garbage
/// inbound ID is replaced with a generated one.
#[test]
fn trace_id_flows_end_to_end() {
    let (handle, addr, ctx) = boot();

    let trace = "obs-test-trace-42";
    let stem = RunKey::new("DC", PimMode::GraphPim, LdbcSize::K1).file_stem();
    let body = format!("{{\"keys\": [\"{stem}\"]}}");
    let (status, headers, response) = client::request_full(
        &addr,
        "POST",
        "/sweeps",
        Some(body.as_bytes()),
        &[("X-Trace-Id", trace)],
    )
    .expect("submit");
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&response));
    assert_eq!(
        header(&headers, "x-trace-id"),
        Some(trace),
        "a sane inbound X-Trace-Id is echoed back"
    );
    let text = String::from_utf8_lossy(&response).to_string();
    let doc = json::parse(&text).expect("acceptance document");
    let obj = doc.as_object().unwrap();
    assert_eq!(obj.get("trace").unwrap().as_str(), Some(trace));
    let job = obj.get("job").unwrap().as_u64().expect("job id");

    // Every streamed event carries the trace.
    let mut events = Vec::new();
    let status = client::get_streaming(&addr, &format!("/jobs/{job}/events"), &[], &mut |line| {
        if !line.is_empty() {
            events.push(line.to_string());
        }
    })
    .expect("event stream");
    assert_eq!(status, 200);
    assert!(!events.is_empty());
    for event in &events {
        assert!(
            event.contains(&format!("\"trace\": \"{trace}\"")),
            "event missing trace: {event}"
        );
    }
    assert!(events.iter().any(|e| e.contains("\"queue_wait_us\"")));

    // The job snapshot carries it.
    let (status, snapshot) = client::get(&addr, &format!("/jobs/{job}")).expect("snapshot");
    assert_eq!(status, 200);
    let snapshot = String::from_utf8_lossy(&snapshot).to_string();
    assert!(
        snapshot.contains(&format!("\"trace\": \"{trace}\"")),
        "{snapshot}"
    );

    // The engine's run record was stamped with the same ID by the
    // worker's thread context — attribution without signature changes.
    let run = ctx
        .profile()
        .runs()
        .iter()
        .find(|r| r.key == stem)
        .cloned()
        .expect("the sweep simulated this key");
    assert_eq!(run.trace.as_deref(), Some(trace));

    // Garbage inbound IDs (here: too long) are replaced, not echoed.
    let long_id = "x".repeat(65);
    let (_, headers, _) =
        client::request_full(&addr, "GET", "/healthz", None, &[("X-Trace-Id", &long_id)])
            .expect("health");
    let echoed = header(&headers, "x-trace-id").expect("header present");
    assert_ne!(echoed, long_id);
    assert_eq!(echoed.len(), 16, "generated IDs are 16 hex digits");

    handle.shutdown();
}

/// `/healthz` reports version/uptime/profile; `/stats` gains the
/// logger's per-level emitted/dropped counters.
#[test]
fn healthz_and_stats_carry_observability_fields() {
    let (handle, addr, _ctx) = boot();

    let (status, body) = client::get(&addr, "/healthz").expect("health");
    assert_eq!(status, 200);
    let doc = json::parse(&String::from_utf8_lossy(&body)).expect("health JSON");
    let obj = doc.as_object().unwrap();
    assert!(obj.get("uptime_seconds").unwrap().as_f64().unwrap() >= 0.0);
    assert_eq!(
        obj.get("version").unwrap().as_str(),
        Some(env!("CARGO_PKG_VERSION"))
    );
    let profile = obj.get("profile").unwrap().as_str().unwrap();
    assert!(profile == "debug" || profile == "release");

    let (status, body) = client::get(&addr, "/stats").expect("stats");
    assert_eq!(status, 200);
    let doc = json::parse(&String::from_utf8_lossy(&body)).expect("stats JSON");
    let logger = doc
        .as_object()
        .unwrap()
        .get("logger")
        .expect("logger section")
        .as_object()
        .unwrap();
    for level in ["error", "warn", "info", "debug"] {
        let counts = logger.get(level).unwrap().as_object().unwrap();
        assert!(counts.get("emitted").unwrap().as_u64().is_some());
        assert!(counts.get("dropped").unwrap().as_u64().is_some());
    }

    handle.shutdown();
}
