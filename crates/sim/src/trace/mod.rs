//! Instruction-level trace format.
//!
//! The graph framework (in `graphpim-workloads`) executes each kernel for
//! real and, as a side effect, records one [`TraceOp`] stream per simulated
//! thread per superstep. The system driver feeds these streams through the
//! core and memory models. This is the same division of labor as the
//! paper's MacSim frontend + SST memory backend, collapsed into one process.
//!
//! The [`codec`] submodule serializes a full trace — the exact sequence of
//! [`TraceEvent`]s a run produces — into a compact binary form, which is
//! what lets a trace be captured once and replayed under many timing
//! configurations.

pub mod codec;

use crate::hmc::HmcAtomicOp;
use crate::mem::addr::Addr;

/// One dynamic instruction (or instruction group) in a thread's stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceOp {
    /// `count` ALU/branch-free instructions with no memory access.
    Compute(u32),
    /// A load. `dep` means the load's address depends on the previous op's
    /// result (pointer chasing — cannot issue until it completes).
    Load {
        /// Target address.
        addr: Addr,
        /// Serializes behind the previous op's result.
        dep: bool,
    },
    /// A store (posted; never blocks retirement in this model).
    Store {
        /// Target address.
        addr: Addr,
    },
    /// An atomic read-modify-write on `addr`. Executed host-side or
    /// offloaded depending on the system configuration and the address.
    Atomic {
        /// Target address.
        addr: Addr,
        /// The HMC command this atomic maps to (Table II).
        op: HmcAtomicOp,
        /// Serializes behind the previous op's result.
        dep: bool,
    },
    /// A conditional branch. `predictable` branches never mispredict;
    /// unpredictable ones (data-dependent frontier checks) mispredict with
    /// the core model's configured probability. `dep` means the condition
    /// consumes the previous op's result (e.g. a CAS return value).
    Branch {
        /// Whether the direction is statically predictable.
        predictable: bool,
        /// Serializes behind the previous op's result.
        dep: bool,
    },
}

impl TraceOp {
    /// How many instructions this op represents.
    pub fn instruction_count(self) -> u64 {
        match self {
            TraceOp::Compute(n) => n as u64,
            _ => 1,
        }
    }

    /// Whether this op touches memory.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            TraceOp::Load { .. } | TraceOp::Store { .. } | TraceOp::Atomic { .. }
        )
    }
}

/// One event of a trace-consumer stream, in emission order.
///
/// A full run is the exact sequence of chunk and barrier events the
/// framework produced; replaying that sequence through the timing models
/// reproduces the run bit for bit (chunk boundaries matter — the system
/// driver interleaves threads within one chunk at a time).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A batch of per-thread ops with no synchronization implied.
    Chunk(Superstep),
    /// A global barrier.
    Barrier,
}

/// The per-thread instruction streams between two barriers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Superstep {
    /// One stream per simulated thread (index = thread = core).
    pub threads: Vec<Vec<TraceOp>>,
}

impl Superstep {
    /// Creates an empty superstep for `threads` threads.
    pub fn new(threads: usize) -> Self {
        Superstep {
            threads: vec![Vec::new(); threads],
        }
    }

    /// Total instruction count across all threads.
    pub fn instructions(&self) -> u64 {
        self.threads
            .iter()
            .flatten()
            .map(|op| op.instruction_count())
            .sum()
    }

    /// Total memory operations across all threads.
    pub fn memory_ops(&self) -> u64 {
        self.threads
            .iter()
            .flatten()
            .filter(|op| op.is_memory())
            .count() as u64
    }

    /// Whether no thread has any work.
    pub fn is_empty(&self) -> bool {
        self.threads.iter().all(|t| t.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::addr::Region;

    #[test]
    fn instruction_counts() {
        assert_eq!(TraceOp::Compute(7).instruction_count(), 7);
        assert_eq!(
            TraceOp::Load {
                addr: 0,
                dep: false
            }
            .instruction_count(),
            1
        );
    }

    #[test]
    fn memory_classification() {
        assert!(TraceOp::Store { addr: 4 }.is_memory());
        assert!(!TraceOp::Compute(1).is_memory());
        assert!(!TraceOp::Branch {
            predictable: true,
            dep: false
        }
        .is_memory());
    }

    #[test]
    fn superstep_aggregates() {
        let mut step = Superstep::new(2);
        step.threads[0].push(TraceOp::Compute(3));
        step.threads[1].push(TraceOp::Load {
            addr: Region::Property.addr(8),
            dep: true,
        });
        assert_eq!(step.instructions(), 4);
        assert_eq!(step.memory_ops(), 1);
        assert!(!step.is_empty());
        assert!(Superstep::new(3).is_empty());
    }
}
