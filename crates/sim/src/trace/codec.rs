//! Compact binary serialization of [`TraceEvent`] streams.
//!
//! This is the trace-store wire format: the whole event stream of one run
//! (every chunk, in order, with barriers interleaved exactly where the
//! framework emitted them) in a form small enough to keep on disk and
//! cheap enough to decode once per replay.
//!
//! ## Format (version 1)
//!
//! ```text
//! header   := magic "GPTR" | version u16 LE | threads varint
//! frames   := (chunk | barrier)* end
//! chunk    := 0x01 | populated-thread-count varint
//!             | (thread-index varint | op-count varint | op*)*
//! barrier  := 0x02
//! end      := 0x00
//! footer   := FNV-1a checksum of all preceding bytes, u64 LE
//! ```
//!
//! Ops are packed into a tag byte (3-bit kind + `dep` / `predictable`
//! flags); memory addresses are zigzag-varint **deltas against the
//! previous address of the same thread** (graph kernels walk arrays, so
//! deltas are small), and atomic commands use the stable one-byte wire
//! code of [`HmcAtomicOp::code`]. The footer checksum makes corruption
//! detectable up front: [`TraceReader::new`] verifies it before any event
//! is decoded, so a torn or bit-rotted store entry fails loudly instead of
//! replaying garbage timing.

use super::{Superstep, TraceEvent, TraceOp};
use crate::hmc::HmcAtomicOp;
use crate::mem::addr::Addr;

/// Format version written into (and required in) the header. Bump on any
/// wire-format change; stores fold it into their fingerprints so old
/// entries are regenerated, not misread.
pub const CODEC_VERSION: u16 = 1;

/// The four magic bytes opening every encoded trace.
pub const MAGIC: [u8; 4] = *b"GPTR";

const FRAME_END: u8 = 0x00;
const FRAME_CHUNK: u8 = 0x01;
const FRAME_BARRIER: u8 = 0x02;

const KIND_COMPUTE: u8 = 0;
const KIND_LOAD: u8 = 1;
const KIND_STORE: u8 = 2;
const KIND_ATOMIC: u8 = 3;
const KIND_BRANCH: u8 = 4;
const KIND_MASK: u8 = 0b0111;
const FLAG_DEP: u8 = 1 << 3;
const FLAG_PREDICTABLE: u8 = 1 << 4;

/// Why a trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// Header version differs from [`CODEC_VERSION`].
    BadVersion(u16),
    /// The buffer ended mid-field.
    Truncated,
    /// The footer checksum does not match the content.
    BadChecksum,
    /// An op tag byte with an unknown kind.
    BadOpTag(u8),
    /// An atomic wire code outside [`HmcAtomicOp::ALL`].
    BadAtomicCode(u8),
    /// A chunk referenced a thread index at or above the header count.
    BadThread(u64),
    /// Bytes remain after the end frame (before the footer).
    TrailingData,
    /// A varint ran longer than 10 bytes.
    BadVarint,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a GraphPIM trace (bad magic)"),
            CodecError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (expected {CODEC_VERSION})"
                )
            }
            CodecError::Truncated => write!(f, "trace truncated"),
            CodecError::BadChecksum => write!(f, "trace checksum mismatch (corrupt)"),
            CodecError::BadOpTag(t) => write!(f, "unknown op tag {t:#04x}"),
            CodecError::BadAtomicCode(c) => write!(f, "unknown atomic wire code {c}"),
            CodecError::BadThread(t) => write!(f, "thread index {t} out of range"),
            CodecError::TrailingData => write!(f, "trailing data after end frame"),
            CodecError::BadVarint => write!(f, "overlong varint"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Incremental FNV-1a (the footer checksum). Feeding bytes in any
/// chunking produces the same hash as one pass over the concatenation,
/// which is what lets [`TraceWriter`] checksum a stream it never holds.
#[derive(Debug, Clone)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// FNV-1a over a byte slice (the footer checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = Fnv::new();
    hash.update(bytes);
    hash.0
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// The stateful half of frame encoding (per-thread address deltas),
/// shared by [`TraceEncoder`] and [`TraceWriter`] so the two cannot
/// drift: both serialize a frame through exactly this code.
#[derive(Debug)]
struct FrameEnc {
    last_addr: Vec<Addr>,
}

impl FrameEnc {
    fn new(threads: usize) -> FrameEnc {
        FrameEnc {
            last_addr: vec![0; threads],
        }
    }

    /// Serializes one chunk frame into `buf`.
    fn chunk(&mut self, step: &Superstep, buf: &mut Vec<u8>) {
        buf.push(FRAME_CHUNK);
        if step.threads.len() > self.last_addr.len() {
            self.last_addr.resize(step.threads.len(), 0);
        }
        let populated = step.threads.iter().filter(|ops| !ops.is_empty()).count();
        put_varint(buf, populated as u64);
        for (t, ops) in step.threads.iter().enumerate() {
            if ops.is_empty() {
                continue;
            }
            put_varint(buf, t as u64);
            put_varint(buf, ops.len() as u64);
            for &op in ops {
                self.op(t, op, buf);
            }
        }
    }

    fn addr_delta(&mut self, t: usize, addr: Addr, buf: &mut Vec<u8>) {
        let delta = addr.wrapping_sub(self.last_addr[t]) as i64;
        self.last_addr[t] = addr;
        put_varint(buf, zigzag(delta));
    }

    fn op(&mut self, t: usize, op: TraceOp, buf: &mut Vec<u8>) {
        match op {
            TraceOp::Compute(n) => {
                buf.push(KIND_COMPUTE);
                put_varint(buf, n as u64);
            }
            TraceOp::Load { addr, dep } => {
                buf.push(KIND_LOAD | if dep { FLAG_DEP } else { 0 });
                self.addr_delta(t, addr, buf);
            }
            TraceOp::Store { addr } => {
                buf.push(KIND_STORE);
                self.addr_delta(t, addr, buf);
            }
            TraceOp::Atomic { addr, op, dep } => {
                buf.push(KIND_ATOMIC | if dep { FLAG_DEP } else { 0 });
                buf.push(op.code());
                self.addr_delta(t, addr, buf);
            }
            TraceOp::Branch { predictable, dep } => {
                let mut tag = KIND_BRANCH;
                if dep {
                    tag |= FLAG_DEP;
                }
                if predictable {
                    tag |= FLAG_PREDICTABLE;
                }
                buf.push(tag);
            }
        }
    }
}

/// Streaming encoder into any [`std::io::Write`] sink. Each frame is
/// serialized into a small reusable scratch buffer (bounded by the
/// framework's chunk size), checksummed incrementally, and flushed to the
/// sink — so a multi-gigabyte capture is never resident. Wire bytes are
/// identical to [`TraceEncoder`] for the same event stream.
#[derive(Debug)]
pub struct TraceWriter<W: std::io::Write> {
    sink: W,
    frame: Vec<u8>,
    enc: FrameEnc,
    hash: Fnv,
    events: u64,
    bytes: u64,
}

impl<W: std::io::Write> TraceWriter<W> {
    /// Starts a trace for `threads` simulated threads, writing the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(threads: usize, sink: W) -> std::io::Result<TraceWriter<W>> {
        let mut writer = TraceWriter {
            sink,
            frame: Vec::with_capacity(4096),
            enc: FrameEnc::new(threads),
            hash: Fnv::new(),
            events: 0,
            bytes: 0,
        };
        writer.frame.extend_from_slice(&MAGIC);
        writer.frame.extend_from_slice(&CODEC_VERSION.to_le_bytes());
        put_varint(&mut writer.frame, threads as u64);
        writer.emit()?;
        Ok(writer)
    }

    /// Number of events (chunks + barriers) written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Bytes emitted to the sink so far (header included, footer not).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Writes one chunk frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn chunk(&mut self, step: &Superstep) -> std::io::Result<()> {
        self.events += 1;
        self.enc.chunk(step, &mut self.frame);
        self.emit()
    }

    /// Writes one barrier frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn barrier(&mut self) -> std::io::Result<()> {
        self.events += 1;
        self.frame.push(FRAME_BARRIER);
        self.emit()
    }

    /// Writes one already-ordered event.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn event(&mut self, event: &TraceEvent) -> std::io::Result<()> {
        match event {
            TraceEvent::Chunk(step) => self.chunk(step),
            TraceEvent::Barrier => self.barrier(),
        }
    }

    /// Seals the trace (end frame plus footer checksum) and returns the
    /// sink. The sink is not flushed; buffered sinks are the caller's to
    /// flush or sync.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.frame.push(FRAME_END);
        self.emit()?;
        let checksum = self.hash.0.to_le_bytes();
        self.sink.write_all(&checksum)?;
        Ok(self.sink)
    }

    /// Flushes the scratch frame to the sink, folding it into the
    /// checksum first.
    fn emit(&mut self) -> std::io::Result<()> {
        self.hash.update(&self.frame);
        self.sink.write_all(&self.frame)?;
        self.bytes += self.frame.len() as u64;
        self.frame.clear();
        Ok(())
    }
}

/// In-memory encoder: feed it the consumer event stream as it happens,
/// then [`finish`](Self::finish) for the final buffer. Implements no
/// consumer trait itself (that lives in `graphpim-workloads`, which wraps
/// one of these); it only knows the wire format.
///
/// A thin infallible wrapper over [`TraceWriter`] with a `Vec<u8>` sink,
/// so both encoders share one serialization path.
#[derive(Debug)]
pub struct TraceEncoder {
    inner: TraceWriter<Vec<u8>>,
}

impl TraceEncoder {
    /// Starts a trace for `threads` simulated threads.
    pub fn new(threads: usize) -> TraceEncoder {
        TraceEncoder {
            inner: TraceWriter::new(threads, Vec::with_capacity(4096))
                .expect("writing to a Vec cannot fail"),
        }
    }

    /// Number of events (chunks + barriers) encoded so far.
    pub fn events(&self) -> u64 {
        self.inner.events()
    }

    /// Encoded size so far, in bytes (before footer).
    pub fn bytes(&self) -> usize {
        self.inner.bytes() as usize
    }

    /// Appends one chunk frame.
    pub fn chunk(&mut self, step: &Superstep) {
        self.inner
            .chunk(step)
            .expect("writing to a Vec cannot fail");
    }

    /// Appends one barrier frame.
    pub fn barrier(&mut self) {
        self.inner.barrier().expect("writing to a Vec cannot fail");
    }

    /// Appends one already-ordered event.
    pub fn event(&mut self, event: &TraceEvent) {
        self.inner
            .event(event)
            .expect("writing to a Vec cannot fail");
    }

    /// Seals the trace: end frame plus footer checksum.
    pub fn finish(self) -> Vec<u8> {
        self.inner.finish().expect("writing to a Vec cannot fail")
    }
}

/// Streaming decoder over an encoded trace. Construction verifies the
/// header and the footer checksum over the whole buffer, so
/// [`next_event`](Self::next_event) errors only indicate an encoder bug,
/// never silent corruption.
#[derive(Debug)]
pub struct TraceReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    end: usize,
    threads: usize,
    last_addr: Vec<Addr>,
    done: bool,
}

impl<'a> TraceReader<'a> {
    /// Validates the header and checksum and positions at the first frame.
    pub fn new(bytes: &'a [u8]) -> Result<TraceReader<'a>, CodecError> {
        // magic + version + ≥1-byte varint + end frame + footer
        if bytes.len() < MAGIC.len() + 2 + 1 + 1 + 8 {
            return Err(CodecError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != CODEC_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let end = bytes.len() - 8;
        let want = u64::from_le_bytes(bytes[end..].try_into().unwrap());
        if fnv1a(&bytes[..end]) != want {
            return Err(CodecError::BadChecksum);
        }
        let mut reader = TraceReader {
            bytes,
            pos: 6,
            end,
            threads: 0,
            last_addr: Vec::new(),
            done: false,
        };
        let threads = reader.varint()? as usize;
        reader.threads = threads;
        reader.last_addr = vec![0; threads];
        Ok(reader)
    }

    /// Thread count of the captured run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn byte(&mut self) -> Result<u8, CodecError> {
        if self.pos >= self.end {
            return Err(CodecError::Truncated);
        }
        let b = self.bytes[self.pos];
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        for shift in 0..10 {
            let b = self.byte()?;
            value |= ((b & 0x7f) as u64) << (7 * shift);
            if b & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(CodecError::BadVarint)
    }

    fn addr(&mut self, t: usize) -> Result<Addr, CodecError> {
        let delta = unzigzag(self.varint()?);
        let addr = self.last_addr[t].wrapping_add(delta as u64);
        self.last_addr[t] = addr;
        Ok(addr)
    }

    fn op(&mut self, t: usize) -> Result<TraceOp, CodecError> {
        let tag = self.byte()?;
        let dep = tag & FLAG_DEP != 0;
        match tag & KIND_MASK {
            KIND_COMPUTE => Ok(TraceOp::Compute(self.varint()? as u32)),
            KIND_LOAD => Ok(TraceOp::Load {
                addr: self.addr(t)?,
                dep,
            }),
            KIND_STORE => Ok(TraceOp::Store {
                addr: self.addr(t)?,
            }),
            KIND_ATOMIC => {
                let code = self.byte()?;
                let op = HmcAtomicOp::from_code(code).ok_or(CodecError::BadAtomicCode(code))?;
                Ok(TraceOp::Atomic {
                    addr: self.addr(t)?,
                    op,
                    dep,
                })
            }
            KIND_BRANCH => Ok(TraceOp::Branch {
                predictable: tag & FLAG_PREDICTABLE != 0,
                dep,
            }),
            _ => Err(CodecError::BadOpTag(tag)),
        }
    }

    /// Decodes the next event, or `Ok(None)` after the end frame.
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, CodecError> {
        if self.done {
            return Ok(None);
        }
        match self.byte()? {
            FRAME_END => {
                if self.pos != self.end {
                    return Err(CodecError::TrailingData);
                }
                self.done = true;
                Ok(None)
            }
            FRAME_BARRIER => Ok(Some(TraceEvent::Barrier)),
            FRAME_CHUNK => {
                let mut step = Superstep::new(self.threads);
                let populated = self.varint()?;
                for _ in 0..populated {
                    let t = self.varint()?;
                    if t >= self.threads as u64 {
                        return Err(CodecError::BadThread(t));
                    }
                    let t = t as usize;
                    let count = self.varint()?;
                    let ops = &mut step.threads[t];
                    ops.reserve(count.min(1 << 20) as usize);
                    for _ in 0..count {
                        let op = self.op(t)?;
                        ops.push(op);
                    }
                }
                Ok(Some(TraceEvent::Chunk(step)))
            }
            other => Err(CodecError::BadOpTag(other)),
        }
    }
}

/// Encodes a complete event stream in one call.
pub fn encode(threads: usize, events: &[TraceEvent]) -> Vec<u8> {
    let mut enc = TraceEncoder::new(threads);
    for event in events {
        enc.event(event);
    }
    enc.finish()
}

/// Decodes a complete trace into `(threads, events)`.
pub fn decode(bytes: &[u8]) -> Result<(usize, Vec<TraceEvent>), CodecError> {
    let mut reader = TraceReader::new(bytes)?;
    let mut events = Vec::new();
    while let Some(event) = reader.next_event()? {
        events.push(event);
    }
    Ok((reader.threads(), events))
}

/// A fully decoded trace: the whole event stream flattened into one
/// contiguous [`TraceOp`] buffer plus frame/span indices into it.
///
/// Decoding a capture costs about as much as replaying it once, and the
/// engine replays each capture under several timing configurations — so
/// the steady state is decode once, replay many times straight off the
/// flat buffer. The trade is memory: roughly 16 bytes per op live versus
/// ~3 on the wire.
#[derive(Debug, Clone)]
pub struct DecodedTrace {
    threads: usize,
    ops: Vec<TraceOp>,
    spans: Vec<ThreadSpan>,
    frames: Vec<DecodedFrame>,
}

/// One thread's contiguous op range within a chunk frame (half-open
/// indices into [`DecodedTrace::ops`]). Threads with no ops in a chunk
/// have no span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadSpan {
    /// Thread index (always below the trace's thread count).
    pub thread: u32,
    /// First op index, inclusive.
    pub start: usize,
    /// Last op index, exclusive.
    pub end: usize,
}

#[derive(Debug, Clone, Copy)]
enum DecodedFrame {
    /// A chunk frame: its span range in `DecodedTrace::spans`.
    Chunk {
        spans_start: usize,
        spans_end: usize,
    },
    /// A global barrier.
    Barrier,
}

/// One event of a decoded trace, borrowing the trace's buffers.
#[derive(Debug, Clone, Copy)]
pub enum DecodedEvent<'a> {
    /// A chunk frame: per-thread op spans into [`DecodedTrace::ops`].
    Chunk(&'a [ThreadSpan]),
    /// A global barrier.
    Barrier,
}

impl DecodedTrace {
    /// Decodes a complete encoded trace. The header, checksum, and every
    /// frame are validated here, so replaying the result cannot fail.
    pub fn decode(bytes: &[u8]) -> Result<DecodedTrace, CodecError> {
        let mut reader = TraceReader::new(bytes)?;
        // The wire format runs ~3 bytes/op; reserving at that ratio keeps
        // the flat buffer from reallocating much during decode.
        let mut ops: Vec<TraceOp> = Vec::with_capacity(bytes.len() / 3);
        let mut spans = Vec::new();
        let mut frames = Vec::new();
        loop {
            match reader.byte()? {
                FRAME_END => {
                    if reader.pos != reader.end {
                        return Err(CodecError::TrailingData);
                    }
                    break;
                }
                FRAME_BARRIER => frames.push(DecodedFrame::Barrier),
                FRAME_CHUNK => {
                    let spans_start = spans.len();
                    let populated = reader.varint()?;
                    for _ in 0..populated {
                        let t = reader.varint()?;
                        if t >= reader.threads as u64 {
                            return Err(CodecError::BadThread(t));
                        }
                        let t = t as usize;
                        let count = reader.varint()?;
                        let start = ops.len();
                        ops.reserve(count.min(1 << 20) as usize);
                        for _ in 0..count {
                            ops.push(reader.op(t)?);
                        }
                        spans.push(ThreadSpan {
                            thread: t as u32,
                            start,
                            end: ops.len(),
                        });
                    }
                    frames.push(DecodedFrame::Chunk {
                        spans_start,
                        spans_end: spans.len(),
                    });
                }
                other => return Err(CodecError::BadOpTag(other)),
            }
        }
        Ok(DecodedTrace {
            threads: reader.threads,
            ops,
            spans,
            frames,
        })
    }

    /// Thread count of the captured run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The flat op buffer all spans index into.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of events (chunks + barriers) in the stream.
    pub fn event_count(&self) -> usize {
        self.frames.len()
    }

    /// Total op count across all chunk frames.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Iterates the event stream in emission order.
    pub fn events(&self) -> impl Iterator<Item = DecodedEvent<'_>> + '_ {
        self.frames.iter().map(move |frame| match *frame {
            DecodedFrame::Chunk {
                spans_start,
                spans_end,
            } => DecodedEvent::Chunk(&self.spans[spans_start..spans_end]),
            DecodedFrame::Barrier => DecodedEvent::Barrier,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::addr::Region;

    fn sample_events(threads: usize) -> Vec<TraceEvent> {
        let mut step = Superstep::new(threads);
        step.threads[0].push(TraceOp::Compute(3));
        step.threads[0].push(TraceOp::Load {
            addr: Region::Property.addr(64),
            dep: true,
        });
        step.threads[0].push(TraceOp::Load {
            addr: Region::Property.addr(0),
            dep: false,
        });
        step.threads[1].push(TraceOp::Atomic {
            addr: Region::Property.addr(128),
            op: HmcAtomicOp::FpAdd64,
            dep: false,
        });
        step.threads[1].push(TraceOp::Branch {
            predictable: false,
            dep: true,
        });
        let mut tail = Superstep::new(threads);
        tail.threads[2].push(TraceOp::Store {
            addr: Region::Meta.addr(8),
        });
        vec![
            TraceEvent::Chunk(step),
            TraceEvent::Barrier,
            TraceEvent::Chunk(tail),
            TraceEvent::Barrier,
        ]
    }

    #[test]
    fn round_trips_sample_stream() {
        let events = sample_events(3);
        let bytes = encode(3, &events);
        let (threads, decoded) = decode(&bytes).expect("decodes");
        assert_eq!(threads, 3);
        assert_eq!(decoded, events);
    }

    #[test]
    fn decoded_trace_agrees_with_event_decode() {
        let events = sample_events(3);
        let bytes = encode(3, &events);
        let decoded = DecodedTrace::decode(&bytes).expect("decodes");
        assert_eq!(decoded.threads(), 3);
        assert_eq!(decoded.event_count(), events.len());
        for (got, want) in decoded.events().zip(&events) {
            match (got, want) {
                (DecodedEvent::Barrier, TraceEvent::Barrier) => {}
                (DecodedEvent::Chunk(spans), TraceEvent::Chunk(step)) => {
                    for span in spans {
                        assert_eq!(
                            &decoded.ops()[span.start..span.end],
                            &step.threads[span.thread as usize][..]
                        );
                    }
                    let spanned: usize = spans.iter().map(|s| s.end - s.start).sum();
                    let total: usize = step.threads.iter().map(|t| t.len()).sum();
                    assert_eq!(spanned, total, "every non-empty stream has a span");
                }
                other => panic!("event kind mismatch: {other:?}"),
            }
        }
        assert_eq!(decoded.op_count(), 6);
    }

    #[test]
    fn decoded_trace_rejects_corruption() {
        let bytes = encode(3, &sample_events(3));
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                DecodedTrace::decode(&bad).is_err(),
                "flipping byte {i} must fail decode"
            );
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode(4, &[]);
        let (threads, decoded) = decode(&bytes).expect("decodes");
        assert_eq!(threads, 4);
        assert!(decoded.is_empty());
    }

    #[test]
    fn deltas_keep_sequential_addresses_small() {
        // 1000 sequential property loads: the delta encoding should stay
        // near 3 bytes/op (tag + small varint), far below 9 (tag + full
        // 8-byte address).
        let mut step = Superstep::new(1);
        for i in 0..1000u64 {
            step.threads[0].push(TraceOp::Load {
                addr: Region::Property.addr(i * 8),
                dep: false,
            });
        }
        let bytes = encode(1, &[TraceEvent::Chunk(step)]);
        assert!(
            bytes.len() < 1000 * 3,
            "sequential loads must encode compactly: {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn corruption_is_detected_up_front() {
        let bytes = encode(3, &sample_events(3));
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                TraceReader::new(&bad).is_err(),
                "flipping byte {i} must fail the header or checksum"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(3, &sample_events(3));
        for len in 0..bytes.len() {
            assert!(decode(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
    }

    #[test]
    fn wrong_magic_and_version_fail() {
        let mut bytes = encode(1, &[]);
        bytes[0] = b'X';
        assert_eq!(TraceReader::new(&bytes).unwrap_err(), CodecError::BadMagic);

        let mut bytes = encode(1, &[]);
        bytes[4] = 99;
        // Re-seal so the checksum is valid and the version check is what
        // fires.
        let end = bytes.len() - 8;
        let sum = fnv1a(&bytes[..end]).to_le_bytes();
        bytes[end..].copy_from_slice(&sum);
        assert_eq!(
            TraceReader::new(&bytes).unwrap_err(),
            CodecError::BadVersion(99)
        );
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn trace_writer_matches_encoder_bytes() {
        let events = sample_events(3);
        let via_encoder = encode(3, &events);
        let mut writer = TraceWriter::new(3, Vec::new()).unwrap();
        for event in &events {
            writer.event(event).unwrap();
        }
        let via_writer = writer.finish().unwrap();
        assert_eq!(via_writer, via_encoder);
    }

    #[test]
    fn trace_writer_streams_through_chunked_sink() {
        // A sink that only accepts a few bytes per write exercises the
        // incremental checksum across arbitrary split points.
        struct Dribble(Vec<u8>);
        impl std::io::Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let events = sample_events(3);
        let mut writer = TraceWriter::new(3, Dribble(Vec::new())).unwrap();
        for event in &events {
            writer.event(event).unwrap();
        }
        let bytes = writer.finish().unwrap().0;
        assert_eq!(bytes, encode(3, &events));
        let (threads, decoded) = decode(&bytes).expect("decodes");
        assert_eq!(threads, 3);
        assert_eq!(decoded, events);
    }

    #[test]
    fn trace_writer_propagates_sink_errors() {
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert!(TraceWriter::new(2, Failing).is_err());
    }

    #[test]
    fn trace_writer_reports_progress() {
        let mut writer = TraceWriter::new(3, Vec::new()).unwrap();
        assert_eq!(writer.events(), 0);
        let header_bytes = writer.bytes();
        assert!(header_bytes > 0);
        for event in &sample_events(3) {
            writer.event(event).unwrap();
        }
        assert_eq!(writer.events(), 4);
        assert!(writer.bytes() > header_bytes);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn op_strategy() -> impl Strategy<Value = TraceOp> {
            prop_oneof![
                (0u32..100_000).prop_map(TraceOp::Compute),
                (any::<u64>(), any::<bool>()).prop_map(|(addr, dep)| TraceOp::Load { addr, dep }),
                any::<u64>().prop_map(|addr| TraceOp::Store { addr }),
                (any::<u64>(), 0usize..HmcAtomicOp::ALL.len(), any::<bool>()).prop_map(
                    |(addr, code, dep)| TraceOp::Atomic {
                        addr,
                        op: HmcAtomicOp::ALL[code],
                        dep,
                    }
                ),
                (any::<bool>(), any::<bool>())
                    .prop_map(|(predictable, dep)| TraceOp::Branch { predictable, dep }),
            ]
        }

        /// `(thread, op)` pairs over `threads` threads, grouped into one
        /// chunk; interleaved with barriers via the `barrier_every` knob.
        fn events_strategy(threads: usize) -> impl Strategy<Value = Vec<TraceEvent>> {
            prop::collection::vec(
                (
                    prop::collection::vec((0usize..threads, op_strategy()), 0..64),
                    any::<bool>(),
                ),
                0..12,
            )
            .prop_map(move |groups| {
                let mut events = Vec::new();
                for (ops, barrier) in groups {
                    let mut step = Superstep::new(threads);
                    for (t, op) in ops {
                        step.threads[t].push(op);
                    }
                    events.push(TraceEvent::Chunk(step));
                    if barrier {
                        events.push(TraceEvent::Barrier);
                    }
                }
                events
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn arbitrary_streams_round_trip(events in events_strategy(4)) {
                let bytes = encode(4, &events);
                let (threads, decoded) = decode(&bytes).expect("round trip");
                prop_assert_eq!(threads, 4);
                prop_assert_eq!(decoded, events);
            }

            #[test]
            fn arbitrary_single_thread_ops_round_trip(
                ops in prop::collection::vec(op_strategy(), 0..256)
            ) {
                let mut step = Superstep::new(1);
                step.threads[0] = ops;
                let events = vec![TraceEvent::Chunk(step), TraceEvent::Barrier];
                let bytes = encode(1, &events);
                prop_assert_eq!(decode(&bytes).expect("round trip").1, events);
            }
        }
    }
}
