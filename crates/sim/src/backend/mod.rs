//! Pluggable memory backends behind one service seam.
//!
//! The paper evaluates exactly one HMC 2.0 cube, but the offloading idea
//! is substrate-agnostic: any memory that executes atomics near the data
//! can sit behind the POU. This module extracts that seam as the
//! [`MemoryBackend`] trait — the `service(kind, addr, now)` timing call
//! plus the stats/telemetry/attribution surface the system simulator
//! consumes — and ships three implementations:
//!
//! * [`SingleCube`] — the paper's Table IV system: one cube, wrapped
//!   without any behavioral change (bit-identical to calling
//!   [`HmcCube`] directly; the bench baseline gate pins this).
//! * [`multi_cube::MultiCubeChain`] — N address-interleaved cubes on a
//!   daisy chain, each with its own SerDes links; requests to cube *k*
//!   pay *k* inter-cube hops each way. Models capacity scaling and
//!   chain-topology latency effects.
//! * [`dpu::DpuBackend`] — an UPMEM-style PIM-enabled DRAM: per-rank DPU
//!   pools where every offloaded atomic pays an explicit host↔PIM
//!   transfer each way and there is no shared coherence (ALPHA-PIM's
//!   transfer-bound regime).
//!
//! # What a backend must conserve
//!
//! Backends report an aggregated [`HmcStats`] and `hmc.*` telemetry, so
//! the run-invariant layer upstream applies to every backend unchanged:
//!
//! * `reads + writes + atomics == dram_accesses`, and the per-vault
//!   request vector sums to `dram_accesses` (every transaction lands in
//!   exactly one vault bucket; "vault" means rank for the DPU backend
//!   and global vault index for multi-cube chains).
//! * `atomics_per_vault[v] <= requests_per_vault[v]`, the per-category
//!   counts sum to `atomics`, and `fp_atomics <= atomics`.
//! * With attribution on, the ledger's component buckets sum to its
//!   total, and the total equals the summed request latency
//!   (`response_at - now` over all services). Backend-added latency
//!   (hops, transfers) must be folded into a component bucket.
//! * Per-vault histogram sample counts (when vault telemetry is on)
//!   equal the per-vault stats counters.
//! * Telemetry is observation-only: enabling it changes no timing.
//!
//! [`conformance::check_conformance`] asserts all of this for any
//! backend; every in-tree backend runs it in tests, and out-of-tree
//! backends should too.

use crate::attrib::HmcAttrib;
use crate::config::SimConfig;
use crate::hmc::{HmcCube, HmcServed, HmcStats, PacketKind};
use crate::mem::Addr;
use crate::telemetry::Telemetry;
use crate::validate::ConfigError;
use crate::Cycle;
use serde::{Deserialize, Serialize};

pub mod conformance;
pub mod dpu;
pub mod multi_cube;

pub use dpu::{DpuBackend, DpuConfig};
pub use multi_cube::{MultiCubeChain, MultiCubeConfig};

/// The memory-side timing seam the system simulator drives.
///
/// One backend instance is the whole memory system of one simulated
/// machine: every read, write, and atomic the cores and caches emit goes
/// through [`service`](Self::service). Implementations must be
/// deterministic (same request sequence ⇒ bit-identical timing and
/// stats) and must keep telemetry/attribution observation-only; see the
/// [module docs](self) for the conservation contract.
pub trait MemoryBackend: std::fmt::Debug + Send {
    /// Services one transaction arriving at absolute time `now` and
    /// returns its timing outcome.
    fn service(&mut self, kind: PacketKind, addr: Addr, now: Cycle) -> HmcServed;

    /// Turns on per-vault queue-wait / unit-occupancy histograms
    /// (observation-only; timing must stay bit-identical).
    fn enable_vault_telemetry(&mut self);

    /// Turns on the request-latency attribution ledger
    /// (observation-only).
    fn enable_attribution(&mut self);

    /// The attribution ledger aggregated across the whole backend, if
    /// enabled. Component buckets must sum to `total`, and `total` must
    /// equal the summed `response_at - now` over every serviced request.
    fn attrib(&self) -> Option<HmcAttrib>;

    /// Reports every live counter: the aggregated `hmc.*` namespace
    /// (identical values to [`stats`](Self::stats)), per-vault histogram
    /// summaries when enabled, and any backend-specific counters under
    /// `backend.<name>.*`.
    fn report_telemetry(&self, sink: &mut dyn Telemetry);

    /// Aggregated traffic/contention statistics. Per-vault vectors cover
    /// the backend's whole topology (concatenated across cubes for a
    /// chain; one entry per rank for the DPU backend). Must return
    /// bit-identical values when called repeatedly without intervening
    /// [`service`](Self::service) calls.
    fn stats(&self) -> HmcStats;
}

/// Which memory backend a simulation runs against.
///
/// Part of [`SimConfig`]; the default ([`BackendConfig::SingleCube`]) is
/// the paper's system and is bit-identical to the pre-trait simulator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum BackendConfig {
    /// One HMC 2.0 cube (Table IV) — the paper's configuration.
    #[default]
    SingleCube,
    /// A daisy chain of address-interleaved HMC cubes.
    MultiCube(MultiCubeConfig),
    /// UPMEM-style PIM-enabled DRAM with per-rank DPUs.
    Dpu(DpuConfig),
}

impl BackendConfig {
    /// Short stable label for reports and artifact file names.
    pub fn label(&self) -> &'static str {
        match self {
            BackendConfig::SingleCube => "single-cube",
            BackendConfig::MultiCube(_) => "multi-cube",
            BackendConfig::Dpu(_) => "dpu",
        }
    }

    /// Builds the backend for `sim`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (call
    /// [`validate`](Self::validate) first; [`SimConfig::validate`] does).
    pub fn build(&self, sim: &SimConfig) -> Box<dyn MemoryBackend> {
        match self {
            BackendConfig::SingleCube => Box::new(SingleCube::new(sim)),
            BackendConfig::MultiCube(mc) => Box::new(MultiCubeChain::new(mc, sim)),
            BackendConfig::Dpu(dc) => Box::new(DpuBackend::new(dc, sim)),
        }
    }

    /// Number of per-vault stat buckets the built backend's aggregated
    /// [`HmcStats`] expose (`requests_per_vault.len()` et al.): the raw
    /// vault count for the single cube, cubes × vaults for a chain, one
    /// bucket per rank for the DPU module. The run-invariant layer checks
    /// finished metrics against this.
    pub fn vault_buckets(&self, sim: &SimConfig) -> usize {
        match self {
            BackendConfig::SingleCube => sim.hmc.vaults,
            BackendConfig::MultiCube(mc) => mc.cubes * sim.hmc.vaults,
            BackendConfig::Dpu(dc) => dc.ranks,
        }
    }

    /// Validates the backend-specific parameters against the substrate
    /// configuration (the cube slice itself is validated separately by
    /// [`crate::config::HmcConfig::validate`]).
    pub fn validate(&self, sim: &SimConfig) -> Result<(), ConfigError> {
        match self {
            BackendConfig::SingleCube => Ok(()),
            BackendConfig::MultiCube(mc) => mc.validate(),
            BackendConfig::Dpu(dc) => dc.validate(sim),
        }
    }
}

/// The paper's single-cube backend: a transparent wrapper over
/// [`HmcCube`]. Every trait method delegates 1:1, so timing, stats, and
/// telemetry are bit-identical to driving the cube directly.
#[derive(Debug, Clone)]
pub struct SingleCube {
    cube: HmcCube,
}

impl SingleCube {
    /// Builds the cube from the substrate configuration.
    pub fn new(sim: &SimConfig) -> Self {
        SingleCube {
            cube: HmcCube::new(&sim.hmc, sim.core.clock_ghz),
        }
    }
}

impl MemoryBackend for SingleCube {
    #[inline]
    fn service(&mut self, kind: PacketKind, addr: Addr, now: Cycle) -> HmcServed {
        self.cube.service(kind, addr, now)
    }

    fn enable_vault_telemetry(&mut self) {
        self.cube.enable_vault_telemetry();
    }

    fn enable_attribution(&mut self) {
        self.cube.enable_attribution();
    }

    fn attrib(&self) -> Option<HmcAttrib> {
        self.cube.attrib().cloned()
    }

    fn report_telemetry(&self, sink: &mut dyn Telemetry) {
        self.cube.report_telemetry(sink);
    }

    fn stats(&self) -> HmcStats {
        self.cube.stats().clone()
    }
}

/// Folds `one` into the aggregate `agg`, concatenating the per-vault
/// vectors (callers append cubes in topology order so global vault
/// indices are stable). Shared by the multi-cube aggregation and tests.
pub(crate) fn merge_stats(agg: &mut HmcStats, one: &HmcStats) {
    agg.request_flits_read += one.request_flits_read;
    agg.request_flits_write += one.request_flits_write;
    agg.request_flits_atomic += one.request_flits_atomic;
    agg.response_flits_read += one.response_flits_read;
    agg.response_flits_write += one.response_flits_write;
    agg.response_flits_atomic += one.response_flits_atomic;
    agg.reads += one.reads;
    agg.writes += one.writes;
    agg.atomics += one.atomics;
    agg.fp_atomics += one.fp_atomics;
    agg.bank_wait_cycles += one.bank_wait_cycles;
    agg.bank_wait_max = agg.bank_wait_max.max(one.bank_wait_max);
    agg.bank_wait_long += one.bank_wait_long;
    agg.fu_wait_cycles += one.fu_wait_cycles;
    agg.fu_busy_cycles += one.fu_busy_cycles;
    agg.dram_activations += one.dram_activations;
    agg.dram_accesses += one.dram_accesses;
    agg.requests_per_vault
        .extend_from_slice(&one.requests_per_vault);
    agg.atomics_per_vault
        .extend_from_slice(&one.atomics_per_vault);
    for (a, &b) in agg
        .atomics_by_category
        .iter_mut()
        .zip(&one.atomics_by_category)
    {
        *a += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backend_is_single_cube() {
        assert_eq!(BackendConfig::default(), BackendConfig::SingleCube);
        assert_eq!(BackendConfig::default().label(), "single-cube");
    }

    #[test]
    fn single_cube_backend_is_bit_identical_to_raw_cube() {
        let sim = SimConfig::hpca_default();
        let mut cube = HmcCube::new(&sim.hmc, sim.core.clock_ghz);
        let mut backend = SingleCube::new(&sim);
        for i in 0..512u64 {
            let addr = (i % 7) * 8192 + i * 64;
            let kind = match i % 3 {
                0 => PacketKind::Read64,
                1 => PacketKind::Write64,
                _ => PacketKind::Atomic(crate::hmc::HmcAtomicOp::Add16),
            };
            let a = cube.service(kind, addr, i as f64);
            let b = backend.service(kind, addr, i as f64);
            assert_eq!(a, b, "request {i}");
        }
        assert_eq!(cube.stats(), &backend.stats());
    }

    #[test]
    fn merge_stats_concatenates_vault_vectors() {
        let mut agg = HmcStats::default();
        let a = HmcStats {
            reads: 3,
            dram_accesses: 3,
            requests_per_vault: vec![2, 1],
            atomics_per_vault: vec![0, 0],
            ..Default::default()
        };
        let mut b = HmcStats {
            atomics: 2,
            dram_accesses: 2,
            requests_per_vault: vec![1, 1],
            atomics_per_vault: vec![1, 1],
            ..Default::default()
        };
        b.atomics_by_category[0] = 2;
        merge_stats(&mut agg, &a);
        merge_stats(&mut agg, &b);
        assert_eq!(agg.requests_per_vault, vec![2, 1, 1, 1]);
        assert_eq!(agg.atomics_per_vault, vec![0, 0, 1, 1]);
        assert_eq!(agg.dram_accesses, 5);
        assert_eq!(
            agg.requests_per_vault.iter().sum::<u64>(),
            agg.dram_accesses
        );
        assert_eq!(agg.atomics_by_category[0], agg.atomics);
    }
}
