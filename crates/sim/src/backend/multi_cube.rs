//! A daisy chain of address-interleaved HMC cubes.
//!
//! HMC 2.0 cubes expose pass-through links, so systems scale capacity by
//! chaining cubes: the host's links reach cube 0, cube 0 forwards to
//! cube 1, and so on. Each cube keeps its own SerDes links, vaults,
//! banks, and atomic-unit pools (so aggregate bandwidth and atomic
//! throughput scale with the chain), but a request to cube *k* pays *k*
//! inter-cube hops of latency in each direction — the topology effect a
//! single-cube model cannot express.
//!
//! Addresses interleave across cubes round-robin at
//! [`MultiCubeConfig::cube_interleave_bytes`] granularity; within its
//! block, each cube stripes across its own vaults exactly like the
//! single-cube model (the per-cube vault mapping is unchanged).

use super::{merge_stats, MemoryBackend};
use crate::attrib::HmcAttrib;
use crate::config::SimConfig;
use crate::hmc::{HmcCube, HmcServed, HmcStats, PacketKind};
use crate::mem::addr::Region;
use crate::mem::Addr;
use crate::telemetry::{Histogram, Telemetry};
use crate::validate::ConfigError;
use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Chain topology parameters. The per-cube internals (vaults, banks,
/// FUs, links, DRAM timing) come from the shared
/// [`crate::config::HmcConfig`]; every cube in the chain is identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiCubeConfig {
    /// Number of cubes on the chain.
    pub cubes: usize,
    /// One-way latency of one inter-cube hop, in nanoseconds (SerDes
    /// re-serialization plus pass-through switching; a request to cube
    /// `k` pays `k` hops each way).
    pub hop_latency_ns: f64,
    /// Interleaving granularity across cubes, in bytes. Must be a power
    /// of two, and coarse enough to contain whole vault-interleave
    /// rounds so the per-cube vault striping stays uniform.
    pub cube_interleave_bytes: u64,
}

impl Default for MultiCubeConfig {
    /// A four-cube chain with 8 ns hops, interleaved at 8 KB (one full
    /// 32-vault × 256 B round per cube block).
    fn default() -> Self {
        MultiCubeConfig {
            cubes: 4,
            hop_latency_ns: 8.0,
            cube_interleave_bytes: 8192,
        }
    }
}

impl MultiCubeConfig {
    /// Checks the chain parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cubes == 0 {
            return Err(ConfigError::ZeroCubes);
        }
        if self.cube_interleave_bytes == 0 || !self.cube_interleave_bytes.is_power_of_two() {
            return Err(ConfigError::CubeInterleave(self.cube_interleave_bytes));
        }
        if !(self.hop_latency_ns.is_finite() && self.hop_latency_ns >= 0.0) {
            return Err(ConfigError::Negative {
                field: "backend.multi_cube.hop_latency_ns",
                value: self.hop_latency_ns,
            });
        }
        // Round-robin interleaving is only uniform when the cube count
        // divides the region's block count (same rule as the vault split).
        let region_bytes = Region::Structure.base() - Region::Meta.base();
        let blocks = region_bytes / self.cube_interleave_bytes;
        if !blocks.is_multiple_of(self.cubes as u64) {
            return Err(ConfigError::CubeSplit {
                cubes: self.cubes,
                blocks,
            });
        }
        Ok(())
    }
}

/// The chain backend: per-cube [`HmcCube`] models plus hop accounting.
#[derive(Debug, Clone)]
pub struct MultiCubeChain {
    cubes: Vec<HmcCube>,
    vaults_per_cube: usize,
    hop_cycles: f64,
    interleave: u64,
    /// Total hop cycles added on top of the cubes' own request
    /// latencies (both directions); folded into the attribution ledger's
    /// `link` bucket so the ledger still closes.
    hop_cycles_total: f64,
    /// Requests that crossed at least one inter-cube hop.
    hopped_requests: u64,
}

impl MultiCubeChain {
    /// Builds the chain: `config.cubes` identical cubes from the
    /// substrate's cube slice.
    ///
    /// # Panics
    ///
    /// Panics if either configuration slice is invalid.
    pub fn new(config: &MultiCubeConfig, sim: &SimConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid MultiCubeConfig: {e}");
        }
        MultiCubeChain {
            cubes: (0..config.cubes)
                .map(|_| HmcCube::new(&sim.hmc, sim.core.clock_ghz))
                .collect(),
            vaults_per_cube: sim.hmc.vaults,
            hop_cycles: config.hop_latency_ns * sim.core.clock_ghz,
            interleave: config.cube_interleave_bytes,
            hop_cycles_total: 0.0,
            hopped_requests: 0,
        }
    }

    /// Which cube an address interleaves onto.
    #[inline]
    fn cube_of(&self, addr: Addr) -> usize {
        ((addr / self.interleave) % self.cubes.len() as u64) as usize
    }

    /// Number of cubes on the chain.
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }
}

impl MemoryBackend for MultiCubeChain {
    fn service(&mut self, kind: PacketKind, addr: Addr, now: Cycle) -> HmcServed {
        let k = self.cube_of(addr);
        let hop = k as f64 * self.hop_cycles;
        // The request arrives at cube k one chain traversal late; the
        // response pays the same hops back. `memory_done` is durability
        // at the bank, which the shifted arrival already includes.
        let mut served = self.cubes[k].service(kind, addr, now + hop);
        served.response_at += hop;
        if k > 0 {
            self.hop_cycles_total += 2.0 * hop;
            self.hopped_requests += 1;
        }
        served
    }

    fn enable_vault_telemetry(&mut self) {
        for cube in &mut self.cubes {
            cube.enable_vault_telemetry();
        }
    }

    fn enable_attribution(&mut self) {
        for cube in &mut self.cubes {
            cube.enable_attribution();
        }
    }

    fn attrib(&self) -> Option<HmcAttrib> {
        let mut agg = HmcAttrib::default();
        let mut any = false;
        for cube in &self.cubes {
            if let Some(a) = cube.attrib() {
                any = true;
                agg.link += a.link;
                agg.vault_overhead += a.vault_overhead;
                agg.queue_wait += a.queue_wait;
                agg.dram += a.dram;
                agg.fu_busy += a.fu_busy;
                agg.fu_wait += a.fu_wait;
                agg.total += a.total;
            }
        }
        if !any {
            return None;
        }
        // Hop time is link time: it extends both the component sum and
        // the total, so the closure invariant still holds.
        agg.link += self.hop_cycles_total;
        agg.total += self.hop_cycles_total;
        Some(agg)
    }

    fn report_telemetry(&self, sink: &mut dyn Telemetry) {
        // Aggregated `hmc.*` counters — the same rendering as the
        // single-cube backend, over the concatenated per-vault vectors,
        // so the finalized-metrics coherence check holds verbatim.
        self.stats().report_telemetry(sink);
        if self.cubes.iter().any(|c| c.vault_telemetry().is_some()) {
            let mut merged_queue = Histogram::new(12);
            let mut merged_fu = Histogram::new(6);
            for (ci, cube) in self.cubes.iter().enumerate() {
                if let Some(vt) = cube.vault_telemetry() {
                    for v in 0..cube.vault_count() {
                        let g = ci * self.vaults_per_cube + v;
                        vt.queue_wait(v)
                            .report_telemetry(&format!("hmc.vault{g:02}.queue_wait"), sink);
                        vt.fu_busy(v)
                            .report_telemetry(&format!("hmc.vault{g:02}.fu_busy"), sink);
                    }
                    merged_queue.merge(&vt.merged_queue_wait());
                    merged_fu.merge(&vt.merged_fu_busy());
                }
            }
            merged_queue.report_telemetry("hmc.queue_wait", sink);
            merged_fu.report_telemetry("hmc.fu_busy", sink);
        }
        sink.record("backend.multi_cube.cubes", self.cubes.len() as f64);
        sink.record("backend.multi_cube.hop_cycles", self.hop_cycles_total);
        sink.record(
            "backend.multi_cube.hopped_requests",
            self.hopped_requests as f64,
        );
    }

    fn stats(&self) -> HmcStats {
        let mut agg = HmcStats::default();
        for cube in &self.cubes {
            merge_stats(&mut agg, cube.stats());
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hmc::HmcAtomicOp;
    use crate::telemetry::CounterRegistry;

    fn chain(cubes: usize, hop_ns: f64) -> MultiCubeChain {
        let sim = SimConfig::hpca_default();
        let config = MultiCubeConfig {
            cubes,
            hop_latency_ns: hop_ns,
            ..MultiCubeConfig::default()
        };
        MultiCubeChain::new(&config, &sim)
    }

    #[test]
    fn config_validation_catches_bad_chains() {
        let ok = MultiCubeConfig::default();
        assert_eq!(ok.validate(), Ok(()));
        let mut c = ok.clone();
        c.cubes = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCubes));
        let mut c = ok.clone();
        c.cube_interleave_bytes = 3000;
        assert_eq!(c.validate(), Err(ConfigError::CubeInterleave(3000)));
        let mut c = ok.clone();
        c.hop_latency_ns = f64::NAN;
        assert!(matches!(c.validate(), Err(ConfigError::Negative { .. })));
        let mut c = ok;
        c.cubes = 7;
        assert!(matches!(c.validate(), Err(ConfigError::CubeSplit { .. })));
    }

    #[test]
    fn addresses_interleave_across_cubes() {
        let mut chain = chain(4, 8.0);
        for block in 0..8u64 {
            chain.service(PacketKind::Read64, block * 8192, 0.0);
        }
        let stats = chain.stats();
        assert_eq!(stats.dram_accesses, 8);
        // Four cubes x 32 vaults: every cube saw two requests, each in
        // its own vault-0 bucket (the block offset is 0).
        assert_eq!(stats.requests_per_vault.len(), 4 * 32);
        for cube in 0..4 {
            assert_eq!(stats.requests_per_vault[cube * 32], 2, "cube {cube}");
        }
        assert_eq!(stats.requests_per_vault.iter().sum::<u64>(), 8);
    }

    #[test]
    fn farther_cubes_pay_hops() {
        let mut near = chain(4, 8.0);
        let mut far = chain(4, 8.0);
        let a = near.service(PacketKind::Read64, 0, 0.0); // cube 0
        let b = far.service(PacketKind::Read64, 3 * 8192, 0.0); // cube 3
                                                                // 3 hops x 8 ns x 2 GHz = 48 cycles each way.
        let expected = 2.0 * 3.0 * 8.0 * 2.0;
        assert!(
            (b.response_at - a.response_at - expected).abs() < 1e-9,
            "far {} vs near {}",
            b.response_at,
            a.response_at
        );
        // Zero-hop chains degenerate to independent parallel cubes.
        let mut flat = chain(4, 0.0);
        let c = flat.service(PacketKind::Read64, 3 * 8192, 0.0);
        assert_eq!(c.response_at, a.response_at);
    }

    #[test]
    fn attribution_closes_with_hops() {
        let mut chain = chain(4, 8.0);
        chain.enable_attribution();
        let mut latency = 0.0;
        for i in 0..128u64 {
            let kind = if i % 3 == 0 {
                PacketKind::Atomic(HmcAtomicOp::Add16)
            } else {
                PacketKind::Read64
            };
            let addr = (i % 6) * 8192 + (i % 2) * 64;
            let served = chain.service(kind, addr, i as f64);
            latency += served.response_at - i as f64;
        }
        let a = chain.attrib().expect("enabled");
        assert!(
            (a.total - latency).abs() < 1e-6 * latency.max(1.0),
            "total {} vs measured {latency}",
            a.total
        );
        assert!(
            (a.components_sum() - a.total).abs() < 1e-6 * a.total.max(1.0),
            "components {} vs total {}",
            a.components_sum(),
            a.total
        );
    }

    #[test]
    fn telemetry_reports_global_vault_indices() {
        let mut chain = chain(2, 8.0);
        chain.enable_vault_telemetry();
        chain.service(PacketKind::Read64, 0, 0.0); // cube 0, vault 0
        chain.service(PacketKind::Read64, 8192, 0.0); // cube 1, vault 0
        let mut reg = CounterRegistry::default();
        chain.report_telemetry(&mut reg);
        // Cube 1's vault 0 is global vault 32.
        assert_eq!(reg.get("hmc.vault00.requests"), Some(1.0));
        assert_eq!(reg.get("hmc.vault32.requests"), Some(1.0));
        assert_eq!(reg.get("hmc.vault00.queue_wait.count"), Some(1.0));
        assert_eq!(reg.get("hmc.vault32.queue_wait.count"), Some(1.0));
        assert_eq!(reg.get("hmc.queue_wait.count"), Some(2.0));
        assert_eq!(reg.get("hmc.dram_accesses"), Some(2.0));
        assert_eq!(reg.get("backend.multi_cube.cubes"), Some(2.0));
        assert_eq!(reg.get("backend.multi_cube.hopped_requests"), Some(1.0));
    }
}
