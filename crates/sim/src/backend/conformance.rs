//! Backend conformance suite: one reusable check that asserts the
//! [`MemoryBackend`](super::MemoryBackend) contract for any
//! implementation.
//!
//! Every in-tree backend runs [`check_conformance`] in its tests (see
//! this module's test list), and an out-of-tree backend should call it
//! from its own tests before being wired into the simulator. The suite
//! asserts, over a deterministic mixed request sequence:
//!
//! 1. **Replay bit-identity** — two independently built instances of the
//!    same configuration return bit-identical [`HmcServed`] outcomes and
//!    bit-identical stats, and repeated [`stats`](super::MemoryBackend::stats)
//!    calls are stable.
//! 2. **Observation neutrality** — enabling vault telemetry and the
//!    attribution ledger changes no timing.
//! 3. **Conservation** — the aggregated stats satisfy the counter
//!    invariants in the [module docs](super): request/access totals,
//!    per-vault sums, per-category sums.
//! 4. **Telemetry closure** — reported `hmc.*` counters equal the stats
//!    fields, and per-vault histogram sample counts equal the per-vault
//!    counters.
//! 5. **Attribution closure** — ledger components sum to the ledger
//!    total, and the total equals the measured summed request latency.

use super::{BackendConfig, MemoryBackend};
use crate::config::SimConfig;
use crate::hmc::{HmcAtomicOp, HmcServed, PacketKind};
use crate::mem::Addr;
use crate::telemetry::CounterRegistry;
use crate::Cycle;

/// The deterministic mixed request sequence the suite replays: reads,
/// writes, sub-block traffic, and atomics from every category, spread
/// over enough distinct blocks to touch multiple vaults (and multiple
/// cubes/ranks on wider topologies), with bursts that force bank and FU
/// queueing.
fn request_sequence(n: usize) -> Vec<(PacketKind, Addr, Cycle)> {
    const OPS: [HmcAtomicOp; 6] = [
        HmcAtomicOp::Add16,
        HmcAtomicOp::DualAdd8Ret,
        HmcAtomicOp::Swap16,
        HmcAtomicOp::And16,
        HmcAtomicOp::CasIfEqual8,
        HmcAtomicOp::FpAdd32,
    ];
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 16
    };
    let mut now: Cycle = 0.0;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let r = rng();
        let kind = match r % 8 {
            0 | 1 => PacketKind::Read64,
            2 => PacketKind::Write64,
            3 => PacketKind::Read16,
            4 => PacketKind::Write16,
            _ => PacketKind::Atomic(OPS[(r / 8) as usize % OPS.len()]),
        };
        // 1 MB of 16-byte-aligned addresses; bursty arrival times so
        // banks and FU pools actually queue.
        let addr = (rng() % (1 << 16)) * 16;
        if rng() % 4 == 0 {
            now += (rng() % 200) as f64;
        }
        out.push((kind, addr, now));
    }
    out
}

fn drive(
    backend: &mut dyn MemoryBackend,
    seq: &[(PacketKind, Addr, Cycle)],
) -> (Vec<HmcServed>, f64) {
    let mut served = Vec::with_capacity(seq.len());
    let mut latency = 0.0;
    for &(kind, addr, now) in seq {
        let s = backend.service(kind, addr, now);
        assert!(
            s.response_at >= now && s.memory_done >= now,
            "causality: response {} / done {} before issue {now}",
            s.response_at,
            s.memory_done
        );
        latency += s.response_at - now;
        served.push(s);
    }
    (served, latency)
}

/// Asserts the full backend contract for `config` built against `sim`.
///
/// # Panics
///
/// Panics (test-style assertion failures) on any contract violation.
pub fn check_conformance(config: &BackendConfig, sim: &SimConfig) {
    config.validate(sim).expect("conformance config validates");
    let seq = request_sequence(2048);

    // 1. Replay bit-identity across independent instances.
    let mut a = config.build(sim);
    let mut b = config.build(sim);
    let (served_a, _) = drive(a.as_mut(), &seq);
    let (served_b, _) = drive(b.as_mut(), &seq);
    assert_eq!(served_a, served_b, "replay must be bit-identical");
    assert_eq!(a.stats(), b.stats(), "stats must be bit-identical");
    assert_eq!(a.stats(), a.stats(), "repeated stats() must be stable");
    assert_eq!(a.attrib(), None, "attribution must be off until enabled");

    // 2. Observation neutrality: instrumentation changes no timing.
    let mut c = config.build(sim);
    c.enable_vault_telemetry();
    c.enable_attribution();
    let (served_c, latency) = drive(c.as_mut(), &seq);
    assert_eq!(
        served_a, served_c,
        "telemetry/attribution must be observation-only"
    );
    let stats = c.stats();
    assert_eq!(stats, a.stats(), "instrumented stats must match plain");

    // 3. Conservation invariants over the aggregated stats.
    assert_eq!(
        stats.reads + stats.writes + stats.atomics,
        stats.dram_accesses,
        "every transaction is exactly one DRAM access"
    );
    assert_eq!(
        stats.requests_per_vault.iter().sum::<u64>(),
        stats.dram_accesses,
        "every transaction lands in exactly one vault bucket"
    );
    assert_eq!(
        stats.atomics_per_vault.iter().sum::<u64>(),
        stats.atomics,
        "every atomic lands in exactly one vault bucket"
    );
    assert_eq!(
        stats.requests_per_vault.len(),
        stats.atomics_per_vault.len(),
        "vault vectors must cover the same topology"
    );
    for (v, (&req, &at)) in stats
        .requests_per_vault
        .iter()
        .zip(&stats.atomics_per_vault)
        .enumerate()
    {
        assert!(at <= req, "vault {v}: atomics {at} exceed requests {req}");
    }
    assert_eq!(
        stats.atomics_by_category.iter().sum::<u64>(),
        stats.atomics,
        "per-category counts must sum to the atomic total"
    );
    assert!(stats.fp_atomics <= stats.atomics);
    assert!(stats.dram_activations <= stats.dram_accesses);
    assert!(stats.atomics > 0, "sequence must exercise atomics");
    assert!(
        stats.requests_per_vault.iter().filter(|&&r| r > 0).count() > 1,
        "sequence must exercise multiple vaults"
    );

    // 4. Telemetry closure: reported counters equal the stats fields.
    let mut reg = CounterRegistry::default();
    c.report_telemetry(&mut reg);
    for (key, value) in [
        ("hmc.reads", stats.reads),
        ("hmc.writes", stats.writes),
        ("hmc.atomics", stats.atomics),
        ("hmc.fp_atomics", stats.fp_atomics),
        ("hmc.dram_accesses", stats.dram_accesses),
        ("hmc.dram_activations", stats.dram_activations),
    ] {
        assert_eq!(reg.get(key), Some(value as f64), "{key}");
    }
    for (v, (&req, &at)) in stats
        .requests_per_vault
        .iter()
        .zip(&stats.atomics_per_vault)
        .enumerate()
    {
        assert_eq!(
            reg.get(&format!("hmc.vault{v:02}.requests")),
            Some(req as f64),
            "vault {v} requests"
        );
        assert_eq!(
            reg.get(&format!("hmc.vault{v:02}.queue_wait.count")),
            Some(req as f64),
            "vault {v} queue-wait samples"
        );
        assert_eq!(
            reg.get(&format!("hmc.vault{v:02}.fu_busy.count")),
            Some(at as f64),
            "vault {v} fu-busy samples"
        );
    }

    // 5. Attribution closure: components sum to total, total equals the
    // measured latency sum.
    let attrib = c.attrib().expect("attribution was enabled");
    let tol = 1e-6 * attrib.total.max(1.0);
    assert!(
        (attrib.components_sum() - attrib.total).abs() < tol,
        "ledger components {} must sum to total {}",
        attrib.components_sum(),
        attrib.total
    );
    assert!(
        (attrib.total - latency).abs() < tol,
        "ledger total {} must equal measured latency {latency}",
        attrib.total
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DpuConfig, MultiCubeConfig};

    #[test]
    fn single_cube_conforms() {
        check_conformance(&BackendConfig::SingleCube, &SimConfig::hpca_default());
    }

    #[test]
    fn multi_cube_conforms() {
        check_conformance(
            &BackendConfig::MultiCube(MultiCubeConfig::default()),
            &SimConfig::hpca_default(),
        );
    }

    #[test]
    fn dpu_conforms() {
        check_conformance(
            &BackendConfig::Dpu(DpuConfig::default()),
            &SimConfig::hpca_default(),
        );
    }

    #[test]
    fn request_sequence_is_deterministic_and_mixed() {
        let a = request_sequence(512);
        let b = request_sequence(512);
        assert_eq!(a, b);
        let atomics = a
            .iter()
            .filter(|(k, _, _)| matches!(k, PacketKind::Atomic(_)))
            .count();
        assert!(atomics > 100, "got {atomics} atomics");
        assert!(a.iter().any(|(k, _, _)| *k == PacketKind::Write64));
        assert!(a.iter().any(|(k, _, _)| *k == PacketKind::Read16));
    }
}
