//! An UPMEM-style PIM-enabled DRAM backend.
//!
//! UPMEM puts general-purpose DPU cores next to each DRAM rank, but —
//! unlike an HMC atomic unit sitting behind the cube's own crossbar —
//! the DPUs share no coherent interconnect with the host: every
//! offloaded operation's operand must be explicitly shipped over the
//! memory channel to the rank and its result shipped back. ALPHA-PIM
//! measures this host↔PIM transfer as the dominant cost on real UPMEM
//! hardware; this backend models exactly that transfer-bound regime.
//!
//! Structurally the backend reuses the cube machinery with a derived
//! geometry: one "vault" per DRAM rank, `banks_per_rank` banks behind
//! it, and a pool of `dpus_per_rank` functional units whose op latency
//! is the DPU's (much slower than an HMC atomic unit). Plain reads and
//! writes are ordinary channel traffic and pay nothing extra; every
//! offloaded atomic pays [`DpuConfig::transfer_ns`] each way on top.

use super::MemoryBackend;
use crate::attrib::HmcAttrib;
use crate::config::{HmcConfig, SimConfig};
use crate::hmc::{HmcCube, HmcServed, HmcStats, PacketKind};
use crate::mem::Addr;
use crate::telemetry::Telemetry;
use crate::validate::ConfigError;
use crate::Cycle;
use serde::{Deserialize, Serialize};

/// UPMEM-style substrate parameters. Channel/link characteristics and
/// DRAM timing are inherited from the shared [`HmcConfig`] slice; the
/// fields here describe the rank/DPU topology and the transfer regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpuConfig {
    /// Number of DRAM ranks, each with its own DPU pool (maps onto the
    /// cube model's vault dimension).
    pub ranks: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// DPU cores per rank, each able to execute one offloaded atomic at
    /// a time (maps onto the functional-unit pool).
    pub dpus_per_rank: usize,
    /// One-way host↔DPU operand/result transfer time per offloaded
    /// atomic, in nanoseconds. Paid twice per atomic (to the rank and
    /// back); this is the cost the HMC's in-package atomic units avoid.
    pub transfer_ns: f64,
    /// Latency of one DPU operation, in nanoseconds (DPU cores clock far
    /// below an HMC atomic unit).
    pub dpu_op_ns: f64,
}

impl Default for DpuConfig {
    /// A 16-rank module with 64 DPUs per rank, 60 ns transfers each way,
    /// and 2.5 ns DPU ops.
    fn default() -> Self {
        DpuConfig {
            ranks: 16,
            banks_per_rank: 16,
            dpus_per_rank: 64,
            transfer_ns: 60.0,
            dpu_op_ns: 2.5,
        }
    }
}

impl DpuConfig {
    /// The cube-model geometry this configuration maps onto: ranks
    /// become vaults, the DPU pool becomes the per-vault FU pool, and
    /// everything else (channel bandwidth, DRAM timing, interleave) is
    /// inherited from the substrate's cube slice.
    pub fn derived_hmc(&self, base: &HmcConfig) -> HmcConfig {
        HmcConfig {
            vaults: self.ranks,
            banks_per_vault: self.banks_per_rank,
            fus_per_vault: self.dpus_per_rank,
            fu_op_ns: self.dpu_op_ns,
            ..base.clone()
        }
    }

    /// Checks the rank/DPU topology and the derived geometry.
    pub fn validate(&self, sim: &SimConfig) -> Result<(), ConfigError> {
        if self.ranks == 0 {
            return Err(ConfigError::ZeroRanks);
        }
        if self.dpus_per_rank == 0 {
            return Err(ConfigError::ZeroDpus);
        }
        if !(self.transfer_ns.is_finite() && self.transfer_ns >= 0.0) {
            return Err(ConfigError::Negative {
                field: "backend.dpu.transfer_ns",
                value: self.transfer_ns,
            });
        }
        if !(self.dpu_op_ns.is_finite() && self.dpu_op_ns >= 0.0) {
            return Err(ConfigError::Negative {
                field: "backend.dpu.dpu_op_ns",
                value: self.dpu_op_ns,
            });
        }
        // Catches zero banks and rank counts that split the interleaved
        // address space unevenly, with the same errors the cube reports.
        self.derived_hmc(&sim.hmc).validate()
    }
}

/// The UPMEM-style backend: a rank/DPU-shaped cube model plus explicit
/// host↔PIM transfer accounting on every offloaded atomic.
#[derive(Debug, Clone)]
pub struct DpuBackend {
    cube: HmcCube,
    transfer_cycles: f64,
    /// Offloaded atomics that paid a round-trip transfer.
    transfers: u64,
    /// Total transfer cycles added (both directions); folded into the
    /// attribution ledger's `link` bucket so the ledger still closes.
    transfer_cycles_total: f64,
}

impl DpuBackend {
    /// Builds the backend from the substrate configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: &DpuConfig, sim: &SimConfig) -> Self {
        if let Err(e) = config.validate(sim) {
            panic!("invalid DpuConfig: {e}");
        }
        DpuBackend {
            cube: HmcCube::new(&config.derived_hmc(&sim.hmc), sim.core.clock_ghz),
            transfer_cycles: config.transfer_ns * sim.core.clock_ghz,
            transfers: 0,
            transfer_cycles_total: 0.0,
        }
    }

    /// Number of ranks (the backend's "vault" dimension).
    pub fn rank_count(&self) -> usize {
        self.cube.vault_count()
    }
}

impl MemoryBackend for DpuBackend {
    fn service(&mut self, kind: PacketKind, addr: Addr, now: Cycle) -> HmcServed {
        if let PacketKind::Atomic(_) = kind {
            // The operand ships to the rank before the DPU can start and
            // the result ships back after; both legs ride the channel.
            let t = self.transfer_cycles;
            let mut served = self.cube.service(kind, addr, now + t);
            served.response_at += t;
            self.transfers += 1;
            self.transfer_cycles_total += 2.0 * t;
            served
        } else {
            self.cube.service(kind, addr, now)
        }
    }

    fn enable_vault_telemetry(&mut self) {
        self.cube.enable_vault_telemetry();
    }

    fn enable_attribution(&mut self) {
        self.cube.enable_attribution();
    }

    fn attrib(&self) -> Option<HmcAttrib> {
        let mut a = self.cube.attrib()?.clone();
        // Transfer time is channel (link) time: it extends both the
        // component sum and the total, keeping the closure invariant.
        a.link += self.transfer_cycles_total;
        a.total += self.transfer_cycles_total;
        Some(a)
    }

    fn report_telemetry(&self, sink: &mut dyn Telemetry) {
        self.cube.report_telemetry(sink);
        sink.record("backend.dpu.ranks", self.cube.vault_count() as f64);
        sink.record("backend.dpu.transfers", self.transfers as f64);
        sink.record("backend.dpu.transfer_cycles", self.transfer_cycles_total);
    }

    fn stats(&self) -> HmcStats {
        self.cube.stats().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hmc::HmcAtomicOp;
    use crate::telemetry::CounterRegistry;

    fn backend(transfer_ns: f64) -> DpuBackend {
        let sim = SimConfig::hpca_default();
        let config = DpuConfig {
            transfer_ns,
            ..DpuConfig::default()
        };
        DpuBackend::new(&config, &sim)
    }

    #[test]
    fn config_validation_catches_bad_modules() {
        let sim = SimConfig::hpca_default();
        let ok = DpuConfig::default();
        assert_eq!(ok.validate(&sim), Ok(()));
        let mut c = ok.clone();
        c.ranks = 0;
        assert_eq!(c.validate(&sim), Err(ConfigError::ZeroRanks));
        let mut c = ok.clone();
        c.dpus_per_rank = 0;
        assert_eq!(c.validate(&sim), Err(ConfigError::ZeroDpus));
        let mut c = ok.clone();
        c.banks_per_rank = 0;
        assert_eq!(c.validate(&sim), Err(ConfigError::ZeroBanks));
        let mut c = ok.clone();
        c.transfer_ns = -1.0;
        assert!(matches!(
            c.validate(&sim),
            Err(ConfigError::Negative { .. })
        ));
        // A rank count that splits the interleaved space unevenly fails
        // with the cube's own error.
        let mut c = ok;
        c.ranks = 7;
        assert!(matches!(
            c.validate(&sim),
            Err(ConfigError::VaultSplit { vaults: 7, .. })
        ));
    }

    #[test]
    fn geometry_is_rank_shaped() {
        let mut b = backend(60.0);
        assert_eq!(b.rank_count(), 16);
        b.service(PacketKind::Read64, 0, 0.0);
        let stats = b.stats();
        assert_eq!(stats.requests_per_vault.len(), 16);
        assert_eq!(stats.requests_per_vault.iter().sum::<u64>(), 1);
    }

    #[test]
    fn atomics_pay_round_trip_transfer() {
        let mut free = backend(0.0);
        let mut paid = backend(60.0);
        let kind = PacketKind::Atomic(HmcAtomicOp::Add16);
        let a = free.service(kind, 64, 0.0);
        let b = paid.service(kind, 64, 0.0);
        // 60 ns x 2 GHz = 120 cycles each way.
        assert!((b.response_at - a.response_at - 240.0).abs() < 1e-9);
        // Plain reads and writes ride the channel as usual.
        let a = free.service(PacketKind::Read64, 4096, 500.0);
        let b = paid.service(PacketKind::Read64, 4096, 500.0);
        assert_eq!(a, b);
        assert_eq!(paid.transfers, 1);
    }

    #[test]
    fn attribution_closes_with_transfers() {
        let mut b = backend(60.0);
        b.enable_attribution();
        let mut latency = 0.0;
        for i in 0..128u64 {
            let kind = if i % 2 == 0 {
                PacketKind::Atomic(HmcAtomicOp::Add16)
            } else {
                PacketKind::Read64
            };
            let served = b.service(kind, i * 320, i as f64 * 3.0);
            latency += served.response_at - i as f64 * 3.0;
        }
        let a = b.attrib().expect("enabled");
        assert!(
            (a.total - latency).abs() < 1e-6 * latency.max(1.0),
            "total {} vs measured {latency}",
            a.total
        );
        assert!(
            (a.components_sum() - a.total).abs() < 1e-6 * a.total.max(1.0),
            "components {} vs total {}",
            a.components_sum(),
            a.total
        );
    }

    #[test]
    fn telemetry_reports_transfer_counters() {
        let mut b = backend(60.0);
        b.service(PacketKind::Atomic(HmcAtomicOp::Add16), 0, 0.0);
        b.service(PacketKind::Read64, 64, 0.0);
        let mut reg = CounterRegistry::default();
        b.report_telemetry(&mut reg);
        assert_eq!(reg.get("backend.dpu.ranks"), Some(16.0));
        assert_eq!(reg.get("backend.dpu.transfers"), Some(1.0));
        assert_eq!(reg.get("backend.dpu.transfer_cycles"), Some(240.0));
        assert_eq!(reg.get("hmc.atomics"), Some(1.0));
        assert_eq!(reg.get("hmc.dram_accesses"), Some(2.0));
    }
}
