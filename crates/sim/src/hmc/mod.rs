//! Hybrid Memory Cube (HMC 2.0) model.
//!
//! Structure follows Table IV of the paper: one 8 GB cube with 32 vaults of
//! 16 DRAM banks each, four SerDes links at 120 GB/s, and per-vault atomic
//! functional units executing the HMC 2.0 atomic command set of Table I.
//! Link traffic is accounted in 128-bit FLITs exactly per Table V.

pub mod atomic;
pub mod cube;
pub mod packet;

pub use atomic::{AtomicCategory, AtomicResponse, HmcAtomicOp};
pub use cube::{HmcCube, HmcServed, HmcStats};
pub use packet::{FlitCost, PacketKind};
