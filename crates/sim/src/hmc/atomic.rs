//! The HMC 2.0 atomic command set (Table I) and the paper's proposed
//! floating-point extension, with functional semantics.
//!
//! Every command performs an atomic read-modify-write on a single 16-byte
//! memory operand with an immediate operand from the request packet; the
//! DRAM bank is locked for the duration (Section II-A). Commands may or may
//! not return a response with the original data and an atomic flag.

use serde::{Deserialize, Serialize};

/// Table I categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomicCategory {
    /// Signed integer adds.
    Arithmetic,
    /// Swap and bit-write.
    Bitwise,
    /// AND/NAND/OR/NOR/XOR.
    Boolean,
    /// Compare-and-swap family and compare-if-equal.
    Comparison,
    /// The paper's proposed FP add/sub extension (Section III-C) — not part
    /// of HMC 2.0.
    FloatExtension,
}

impl AtomicCategory {
    /// All categories, in the order used by per-category counter arrays.
    pub const ALL: [AtomicCategory; 5] = [
        AtomicCategory::Arithmetic,
        AtomicCategory::Bitwise,
        AtomicCategory::Boolean,
        AtomicCategory::Comparison,
        AtomicCategory::FloatExtension,
    ];

    /// Position of this category in [`AtomicCategory::ALL`].
    pub fn index(self) -> usize {
        match self {
            AtomicCategory::Arithmetic => 0,
            AtomicCategory::Bitwise => 1,
            AtomicCategory::Boolean => 2,
            AtomicCategory::Comparison => 3,
            AtomicCategory::FloatExtension => 4,
        }
    }

    /// Namespaced telemetry key for this category's atomic count.
    pub fn telemetry_key(self) -> &'static str {
        match self {
            AtomicCategory::Arithmetic => "hmc.atomic.arithmetic",
            AtomicCategory::Bitwise => "hmc.atomic.bitwise",
            AtomicCategory::Boolean => "hmc.atomic.boolean",
            AtomicCategory::Comparison => "hmc.atomic.comparison",
            AtomicCategory::FloatExtension => "hmc.atomic.float_extension",
        }
    }
}

/// One HMC atomic command.
///
/// The 18 HMC 2.0 commands plus the two floating-point extension commands
/// the paper proposes for PageRank and Betweenness Centrality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HmcAtomicOp {
    /// Dual 8-byte signed add, posted (no response).
    DualAdd8,
    /// 16-byte signed add, posted.
    Add16,
    /// Dual 8-byte signed add returning the original data.
    DualAdd8Ret,
    /// 16-byte signed add returning the original data.
    Add16Ret,
    /// 8-byte increment, posted.
    Increment8,
    /// 16-byte swap, returns the original data.
    Swap16,
    /// 8-byte bit write under mask, posted.
    BitWrite8,
    /// 8-byte bit write under mask returning the original data.
    BitWrite8Ret,
    /// 16-byte boolean AND, posted.
    And16,
    /// 16-byte boolean NAND, posted.
    Nand16,
    /// 16-byte boolean OR, posted.
    Or16,
    /// 16-byte boolean NOR, posted.
    Nor16,
    /// 16-byte boolean XOR, posted.
    Xor16,
    /// 8-byte compare-and-swap if equal; returns original data + flag.
    CasIfEqual8,
    /// 16-byte compare-and-swap if the memory operand is zero.
    CasIfZero16,
    /// 16-byte compare-and-swap if the operand is greater than memory.
    CasIfGreater16,
    /// 16-byte compare-and-swap if the operand is less than memory.
    CasIfLess16,
    /// 16-byte compare-if-equal: returns only the success flag.
    CompareEqual16,
    /// Extension: 32-bit floating-point add, posted.
    FpAdd32,
    /// Extension: 64-bit floating-point add, posted.
    FpAdd64,
}

/// Response of a functional atomic execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomicResponse {
    /// Original memory data, for commands that return it.
    pub original: Option<u128>,
    /// The atomic flag: whether the operation "succeeded" (always true for
    /// unconditional ops; the comparison result for conditional ones).
    pub flag: bool,
}

impl HmcAtomicOp {
    /// The 18 commands of the HMC 2.0 specification (Table I), excluding the
    /// paper's FP extension.
    pub const HMC20_SET: [HmcAtomicOp; 18] = [
        HmcAtomicOp::DualAdd8,
        HmcAtomicOp::Add16,
        HmcAtomicOp::DualAdd8Ret,
        HmcAtomicOp::Add16Ret,
        HmcAtomicOp::Increment8,
        HmcAtomicOp::Swap16,
        HmcAtomicOp::BitWrite8,
        HmcAtomicOp::BitWrite8Ret,
        HmcAtomicOp::And16,
        HmcAtomicOp::Nand16,
        HmcAtomicOp::Or16,
        HmcAtomicOp::Nor16,
        HmcAtomicOp::Xor16,
        HmcAtomicOp::CasIfEqual8,
        HmcAtomicOp::CasIfZero16,
        HmcAtomicOp::CasIfGreater16,
        HmcAtomicOp::CasIfLess16,
        HmcAtomicOp::CompareEqual16,
    ];

    /// Every command, HMC 2.0 set first, FP extension last. The position
    /// of a command in this array is its stable wire code
    /// ([`code`](Self::code) / [`from_code`](Self::from_code)) used by the
    /// binary trace codec — append only, never reorder.
    pub const ALL: [HmcAtomicOp; 20] = [
        HmcAtomicOp::DualAdd8,
        HmcAtomicOp::Add16,
        HmcAtomicOp::DualAdd8Ret,
        HmcAtomicOp::Add16Ret,
        HmcAtomicOp::Increment8,
        HmcAtomicOp::Swap16,
        HmcAtomicOp::BitWrite8,
        HmcAtomicOp::BitWrite8Ret,
        HmcAtomicOp::And16,
        HmcAtomicOp::Nand16,
        HmcAtomicOp::Or16,
        HmcAtomicOp::Nor16,
        HmcAtomicOp::Xor16,
        HmcAtomicOp::CasIfEqual8,
        HmcAtomicOp::CasIfZero16,
        HmcAtomicOp::CasIfGreater16,
        HmcAtomicOp::CasIfLess16,
        HmcAtomicOp::CompareEqual16,
        HmcAtomicOp::FpAdd32,
        HmcAtomicOp::FpAdd64,
    ];

    /// Stable one-byte wire code of this command (its position in
    /// [`HmcAtomicOp::ALL`]).
    pub fn code(self) -> u8 {
        use HmcAtomicOp::*;
        match self {
            DualAdd8 => 0,
            Add16 => 1,
            DualAdd8Ret => 2,
            Add16Ret => 3,
            Increment8 => 4,
            Swap16 => 5,
            BitWrite8 => 6,
            BitWrite8Ret => 7,
            And16 => 8,
            Nand16 => 9,
            Or16 => 10,
            Nor16 => 11,
            Xor16 => 12,
            CasIfEqual8 => 13,
            CasIfZero16 => 14,
            CasIfGreater16 => 15,
            CasIfLess16 => 16,
            CompareEqual16 => 17,
            FpAdd32 => 18,
            FpAdd64 => 19,
        }
    }

    /// The command with the given wire code, or `None`.
    pub fn from_code(code: u8) -> Option<HmcAtomicOp> {
        Self::ALL.get(code as usize).copied()
    }

    /// Table I category of this command.
    pub fn category(self) -> AtomicCategory {
        use HmcAtomicOp::*;
        match self {
            DualAdd8 | Add16 | DualAdd8Ret | Add16Ret | Increment8 => AtomicCategory::Arithmetic,
            Swap16 | BitWrite8 | BitWrite8Ret => AtomicCategory::Bitwise,
            And16 | Nand16 | Or16 | Nor16 | Xor16 => AtomicCategory::Boolean,
            CasIfEqual8 | CasIfZero16 | CasIfGreater16 | CasIfLess16 | CompareEqual16 => {
                AtomicCategory::Comparison
            }
            FpAdd32 | FpAdd64 => AtomicCategory::FloatExtension,
        }
    }

    /// Whether a response packet carries data or a flag back to the host.
    pub fn has_return(self) -> bool {
        use HmcAtomicOp::*;
        !matches!(
            self,
            DualAdd8
                | Add16
                | Increment8
                | BitWrite8
                | And16
                | Nand16
                | Or16
                | Nor16
                | Xor16
                | FpAdd32
                | FpAdd64
        )
    }

    /// Whether this command is part of HMC 2.0 (vs. the FP extension).
    pub fn in_hmc20(self) -> bool {
        self.category() != AtomicCategory::FloatExtension
    }

    /// Request packet size in FLITs (Table V: atomics carry one 16-byte
    /// immediate — header/tail plus one data FLIT = 2 FLITs).
    pub fn request_flits(self) -> u32 {
        2
    }

    /// Response packet size in FLITs, following Table V rows exactly:
    /// `add without return` and `compare if equal` respond with a bare
    /// 1-FLIT acknowledgment; `add with return` and the
    /// `boolean/bitwise/CAS` class respond with 2 FLITs.
    pub fn response_flits(self) -> u32 {
        use HmcAtomicOp::*;
        match self {
            // "add without return" row (posted arithmetic, incl. FP ext).
            DualAdd8 | Add16 | Increment8 | FpAdd32 | FpAdd64 => 1,
            // "compare if equal" row: flag only.
            CompareEqual16 => 1,
            // "add with return" and "boolean/bitwise/CAS" rows.
            _ => 2,
        }
    }

    /// Executes the command functionally against a 16-byte memory word.
    ///
    /// `memory` is the 16-byte operand in little-endian order; `operand` is
    /// the immediate from the request. Returns the response (original data
    /// and atomic flag).
    pub fn execute(self, memory: &mut u128, operand: u128) -> AtomicResponse {
        use HmcAtomicOp::*;
        let original = *memory;
        let lo = |x: u128| x as u64;
        let hi = |x: u128| (x >> 64) as u64;
        let join = |l: u64, h: u64| (l as u128) | ((h as u128) << 64);
        let mut flag = true;
        match self {
            DualAdd8 | DualAdd8Ret => {
                *memory = join(
                    lo(original).wrapping_add(lo(operand)),
                    hi(original).wrapping_add(hi(operand)),
                );
            }
            Add16 | Add16Ret => {
                *memory = original.wrapping_add(operand);
            }
            Increment8 => {
                *memory = join(lo(original).wrapping_add(1), hi(original));
            }
            Swap16 => {
                *memory = operand;
            }
            BitWrite8 | BitWrite8Ret => {
                // operand: low 64 bits = data, high 64 bits = mask.
                let data = lo(operand);
                let mask = hi(operand);
                let merged = (lo(original) & !mask) | (data & mask);
                *memory = join(merged, hi(original));
            }
            And16 => *memory = original & operand,
            Nand16 => *memory = !(original & operand),
            Or16 => *memory = original | operand,
            Nor16 => *memory = !(original | operand),
            Xor16 => *memory = original ^ operand,
            CasIfEqual8 => {
                // operand: low 64 = compare value, high 64 = swap value.
                if lo(original) == lo(operand) {
                    *memory = join(hi(operand), hi(original));
                } else {
                    flag = false;
                }
            }
            CasIfZero16 => {
                if original == 0 {
                    *memory = operand;
                } else {
                    flag = false;
                }
            }
            CasIfGreater16 => {
                if (operand as i128) > (original as i128) {
                    *memory = operand;
                } else {
                    flag = false;
                }
            }
            CasIfLess16 => {
                if (operand as i128) < (original as i128) {
                    *memory = operand;
                } else {
                    flag = false;
                }
            }
            CompareEqual16 => {
                flag = original == operand;
            }
            FpAdd32 => {
                let m = f32::from_bits(lo(original) as u32);
                let o = f32::from_bits(lo(operand) as u32);
                *memory = join((m + o).to_bits() as u64, hi(original));
            }
            FpAdd64 => {
                let m = f64::from_bits(lo(original));
                let o = f64::from_bits(lo(operand));
                *memory = join((m + o).to_bits(), hi(original));
            }
        }
        AtomicResponse {
            original: if self.has_return() {
                Some(original)
            } else {
                None
            },
            flag,
        }
    }
}

impl std::fmt::Display for HmcAtomicOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_codes_round_trip() {
        for (i, op) in HmcAtomicOp::ALL.iter().enumerate() {
            assert_eq!(op.code() as usize, i, "code must match ALL position");
            assert_eq!(HmcAtomicOp::from_code(op.code()), Some(*op));
        }
        assert_eq!(HmcAtomicOp::from_code(20), None);
        // The HMC 2.0 prefix of ALL is exactly HMC20_SET.
        assert_eq!(&HmcAtomicOp::ALL[..18], &HmcAtomicOp::HMC20_SET[..]);
    }

    #[test]
    fn table1_has_18_commands() {
        assert_eq!(HmcAtomicOp::HMC20_SET.len(), 18);
        assert!(HmcAtomicOp::HMC20_SET.iter().all(|op| op.in_hmc20()));
        assert!(!HmcAtomicOp::FpAdd64.in_hmc20());
    }

    #[test]
    fn table1_categories_cover_all_four() {
        use std::collections::HashSet;
        let cats: HashSet<_> = HmcAtomicOp::HMC20_SET
            .iter()
            .map(|op| op.category())
            .collect();
        assert!(cats.contains(&AtomicCategory::Arithmetic));
        assert!(cats.contains(&AtomicCategory::Bitwise));
        assert!(cats.contains(&AtomicCategory::Boolean));
        assert!(cats.contains(&AtomicCategory::Comparison));
        assert_eq!(cats.len(), 4);
    }

    #[test]
    fn category_index_matches_all_order() {
        for (i, cat) in AtomicCategory::ALL.iter().enumerate() {
            assert_eq!(cat.index(), i);
        }
        assert_eq!(
            AtomicCategory::FloatExtension.telemetry_key(),
            "hmc.atomic.float_extension"
        );
    }

    #[test]
    fn add16_wraps() {
        let mut mem = u128::MAX;
        let resp = HmcAtomicOp::Add16.execute(&mut mem, 1);
        assert_eq!(mem, 0);
        assert_eq!(resp.original, None); // posted
        assert!(resp.flag);
    }

    #[test]
    fn add16ret_returns_original() {
        let mut mem = 5u128;
        let resp = HmcAtomicOp::Add16Ret.execute(&mut mem, 7);
        assert_eq!(mem, 12);
        assert_eq!(resp.original, Some(5));
    }

    #[test]
    fn dual_add_is_independent_halves() {
        let mut mem = (1u128 << 64) | 1;
        HmcAtomicOp::DualAdd8.execute(&mut mem, (2u128 << 64) | 3);
        assert_eq!(mem as u64, 4);
        assert_eq!((mem >> 64) as u64, 3);
    }

    #[test]
    fn increment8_touches_low_half_only() {
        let mut mem = (9u128 << 64) | 41;
        HmcAtomicOp::Increment8.execute(&mut mem, 0);
        assert_eq!(mem as u64, 42);
        assert_eq!((mem >> 64) as u64, 9);
    }

    #[test]
    fn swap_returns_old() {
        let mut mem = 10u128;
        let resp = HmcAtomicOp::Swap16.execute(&mut mem, 99);
        assert_eq!(mem, 99);
        assert_eq!(resp.original, Some(10));
    }

    #[test]
    fn bit_write_respects_mask() {
        let mut mem = 0b1010u128;
        // data = 0b0101, mask = 0b0011 -> only low two bits change.
        let operand = 0b0101u128 | (0b0011u128 << 64);
        HmcAtomicOp::BitWrite8.execute(&mut mem, operand);
        assert_eq!(mem, 0b1001);
    }

    #[test]
    fn boolean_ops_match_scalar() {
        let a = 0xF0F0u128;
        let b = 0x0FF0u128;
        let run = |op: HmcAtomicOp| {
            let mut m = a;
            op.execute(&mut m, b);
            m
        };
        assert_eq!(run(HmcAtomicOp::And16), a & b);
        assert_eq!(run(HmcAtomicOp::Or16), a | b);
        assert_eq!(run(HmcAtomicOp::Xor16), a ^ b);
        assert_eq!(run(HmcAtomicOp::Nand16), !(a & b));
        assert_eq!(run(HmcAtomicOp::Nor16), !(a | b));
    }

    #[test]
    fn cas_if_equal_success_and_failure() {
        let mut mem = 7u128;
        let operand = 7u128 | (100u128 << 64); // compare 7, swap 100
        let ok = HmcAtomicOp::CasIfEqual8.execute(&mut mem, operand);
        assert!(ok.flag);
        assert_eq!(mem as u64, 100);
        let fail = HmcAtomicOp::CasIfEqual8.execute(&mut mem, operand);
        assert!(!fail.flag);
        assert_eq!(mem as u64, 100);
    }

    #[test]
    fn cas_if_zero_only_fires_on_zero() {
        let mut mem = 0u128;
        assert!(HmcAtomicOp::CasIfZero16.execute(&mut mem, 5).flag);
        assert_eq!(mem, 5);
        assert!(!HmcAtomicOp::CasIfZero16.execute(&mut mem, 9).flag);
        assert_eq!(mem, 5);
    }

    #[test]
    fn cas_greater_and_less_are_signed() {
        let mut mem = 0u128;
        // -1 (as i128) is not greater than 0.
        let minus_one = (-1i128) as u128;
        assert!(
            !HmcAtomicOp::CasIfGreater16
                .execute(&mut mem, minus_one)
                .flag
        );
        assert!(HmcAtomicOp::CasIfLess16.execute(&mut mem, minus_one).flag);
        assert_eq!(mem, minus_one);
    }

    #[test]
    fn compare_equal_does_not_modify() {
        let mut mem = 3u128;
        let resp = HmcAtomicOp::CompareEqual16.execute(&mut mem, 3);
        assert!(resp.flag);
        assert_eq!(mem, 3);
        assert!(!HmcAtomicOp::CompareEqual16.execute(&mut mem, 4).flag);
    }

    #[test]
    fn fp_add_extension() {
        let mut mem = (1.5f64).to_bits() as u128;
        HmcAtomicOp::FpAdd64.execute(&mut mem, (2.25f64).to_bits() as u128);
        assert_eq!(f64::from_bits(mem as u64), 3.75);
        assert_eq!(
            HmcAtomicOp::FpAdd64.category(),
            AtomicCategory::FloatExtension
        );
    }

    #[test]
    fn table5_flit_costs() {
        // add without return: 2 req / 1 resp.
        assert_eq!(HmcAtomicOp::Add16.request_flits(), 2);
        assert_eq!(HmcAtomicOp::Add16.response_flits(), 1);
        // add with return: 2 req / 2 resp.
        assert_eq!(HmcAtomicOp::Add16Ret.response_flits(), 2);
        // boolean/bitwise/CAS: 2 req / 2 resp.
        assert_eq!(HmcAtomicOp::Swap16.response_flits(), 2);
        assert_eq!(HmcAtomicOp::CasIfEqual8.response_flits(), 2);
        // compare if equal: 2 req / 1 resp.
        assert_eq!(HmcAtomicOp::CompareEqual16.response_flits(), 1);
    }

    #[test]
    fn posted_ops_have_no_return() {
        assert!(!HmcAtomicOp::Add16.has_return());
        assert!(!HmcAtomicOp::Xor16.has_return());
        assert!(HmcAtomicOp::CasIfEqual8.has_return());
        assert!(HmcAtomicOp::CompareEqual16.has_return());
    }
}
