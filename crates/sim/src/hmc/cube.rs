//! The HMC cube timing model: vaults, banks, atomic functional units, and
//! SerDes links.
//!
//! Requests arrive with an absolute timestamp (in CPU cycles) and the model
//! threads them through: request-link serialization → vault controller →
//! bank occupancy (closed-page DRAM timing from Table IV) → (for atomics)
//! a per-vault functional-unit pool with the bank locked for the whole
//! read-modify-write (Section II-A) → response-link serialization.
//!
//! Contention is modeled with busy-until registers. Cores' local clocks may
//! drift between barriers, so arrival order is approximate; this
//! "bound-and-drift" approximation is documented in DESIGN.md and is
//! adequate for the paper's relative comparisons.

use super::atomic::AtomicCategory;
use super::packet::PacketKind;
use crate::attrib::HmcAttrib;
use crate::config::HmcConfig;
use crate::mem::addr::{vault_bank_of, Addr};
use crate::telemetry::{Histogram, Telemetry};
use crate::Cycle;

/// DRAM row size used for the open-page row-buffer model.
const ROW_BYTES: u64 = 2048;

/// Maximum visible per-bank queueing delay, in cycles (finite vault
/// request buffers; also bounds residual cross-core timestamp skew).
const MAX_BANK_QUEUE_CYCLES: f64 = 2000.0;

/// Timing outcome of one serviced transaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HmcServed {
    /// When the response (data or acknowledgment) reaches the host.
    pub response_at: Cycle,
    /// When the memory-side effect is durable (bank operation finished).
    /// Barriers wait on this for posted PIM atomics.
    pub memory_done: Cycle,
    /// Cycles the transaction queued behind a busy bank.
    pub bank_wait: Cycle,
    /// Cycles an atomic queued waiting for a functional unit.
    pub fu_wait: Cycle,
}

/// Aggregate traffic and contention statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HmcStats {
    /// FLITs sent host → cube, split by transaction class.
    pub request_flits_read: u64,
    /// FLITs sent host → cube for writes.
    pub request_flits_write: u64,
    /// FLITs sent host → cube for atomics.
    pub request_flits_atomic: u64,
    /// FLITs sent cube → host for reads.
    pub response_flits_read: u64,
    /// FLITs sent cube → host for writes.
    pub response_flits_write: u64,
    /// FLITs sent cube → host for atomics.
    pub response_flits_atomic: u64,
    /// Read transactions serviced.
    pub reads: u64,
    /// Write transactions serviced.
    pub writes: u64,
    /// Atomic transactions serviced.
    pub atomics: u64,
    /// Atomics that used the floating-point extension commands.
    pub fp_atomics: u64,
    /// Total cycles spent queued behind busy banks.
    pub bank_wait_cycles: f64,
    /// Largest single bank wait observed.
    pub bank_wait_max: f64,
    /// Accesses that waited more than 500 cycles on a bank.
    pub bank_wait_long: u64,
    /// Total cycles atomics queued for a functional unit.
    pub fu_wait_cycles: f64,
    /// Total busy cycles across all functional units.
    pub fu_busy_cycles: f64,
    /// DRAM row activations (row-buffer misses).
    pub dram_activations: u64,
    /// All DRAM column accesses (hits + misses).
    pub dram_accesses: u64,
    /// Transactions serviced per vault (every read, write, and atomic;
    /// the per-vault denominator the histogram sample counts must match).
    pub requests_per_vault: Vec<u64>,
    /// Atomic count per vault (functional-unit pressure; Figure 11).
    pub atomics_per_vault: Vec<u64>,
    /// Atomic count per Table I category, indexed by
    /// [`AtomicCategory::index`].
    pub atomics_by_category: [u64; 5],
}

impl HmcStats {
    /// Total request-direction FLITs.
    pub fn request_flits(&self) -> u64 {
        self.request_flits_read + self.request_flits_write + self.request_flits_atomic
    }

    /// Total response-direction FLITs.
    pub fn response_flits(&self) -> u64 {
        self.response_flits_read + self.response_flits_write + self.response_flits_atomic
    }

    /// Total FLITs in both directions.
    pub fn total_flits(&self) -> u64 {
        self.request_flits() + self.response_flits()
    }

    /// Reports every counter under the `hmc.` namespace, including
    /// per-category atomic counts and per-vault atomic pressure
    /// (`hmc.vault00.atomics`, ...).
    pub fn report_telemetry(&self, sink: &mut dyn Telemetry) {
        sink.record("hmc.reads", self.reads as f64);
        sink.record("hmc.writes", self.writes as f64);
        sink.record("hmc.atomics", self.atomics as f64);
        sink.record("hmc.fp_atomics", self.fp_atomics as f64);
        sink.record("hmc.request_flits", self.request_flits() as f64);
        sink.record("hmc.response_flits", self.response_flits() as f64);
        sink.record("hmc.request_flits_atomic", self.request_flits_atomic as f64);
        sink.record(
            "hmc.response_flits_atomic",
            self.response_flits_atomic as f64,
        );
        sink.record("hmc.bank_wait_cycles", self.bank_wait_cycles);
        sink.record("hmc.bank_wait_max", self.bank_wait_max);
        sink.record("hmc.bank_wait_long", self.bank_wait_long as f64);
        sink.record("hmc.fu_wait_cycles", self.fu_wait_cycles);
        sink.record("hmc.fu_busy_cycles", self.fu_busy_cycles);
        sink.record("hmc.dram_activations", self.dram_activations as f64);
        sink.record("hmc.dram_accesses", self.dram_accesses as f64);
        for cat in AtomicCategory::ALL {
            sink.record(
                cat.telemetry_key(),
                self.atomics_by_category[cat.index()] as f64,
            );
        }
        for (v, &n) in self.requests_per_vault.iter().enumerate() {
            sink.record(&format!("hmc.vault{v:02}.requests"), n as f64);
        }
        for (v, &n) in self.atomics_per_vault.iter().enumerate() {
            sink.record(&format!("hmc.vault{v:02}.atomics"), n as f64);
        }
    }
}

/// Optional per-vault contention histograms.
///
/// Today the cube computes each transaction's bank queueing delay and each
/// atomic's functional-unit occupancy, uses them for timing, and throws the
/// distribution away. When enabled (it is not by default), this records
/// them: `queue_wait` samples every transaction's bank wait in cycles, and
/// `fu_busy` samples how many of the vault's FUs were still busy at the
/// moment each atomic's operand arrived (unit-occupancy pressure).
/// Recording happens strictly after the timing decision, so enabling it
/// cannot change any simulated time.
#[derive(Debug, Clone)]
pub struct VaultTelemetry {
    queue_wait: Vec<Histogram>,
    fu_busy: Vec<Histogram>,
}

impl VaultTelemetry {
    fn new(vaults: usize) -> Self {
        VaultTelemetry {
            // 12 buckets: [0,1), ..., [1024, inf) cycles — the queue cap is
            // 2000 cycles, so the tail bucket stays meaningful.
            queue_wait: (0..vaults).map(|_| Histogram::new(12)).collect(),
            // 6 buckets cover 0..=4 busy FUs exactly plus an open tail.
            fu_busy: (0..vaults).map(|_| Histogram::new(6)).collect(),
        }
    }

    /// Bank queue-wait histogram of `vault`.
    pub fn queue_wait(&self, vault: usize) -> &Histogram {
        &self.queue_wait[vault]
    }

    /// FU busy-occupancy histogram of `vault`.
    pub fn fu_busy(&self, vault: usize) -> &Histogram {
        &self.fu_busy[vault]
    }

    /// Reports summary statistics for every vault
    /// (`hmc.vault00.queue_wait.p99`, `hmc.vault00.fu_busy.mean`, ...),
    /// plus cube-level aggregates (`hmc.queue_wait.p99`, ...) obtained by
    /// merging the per-vault distributions.
    pub fn report_telemetry(&self, sink: &mut dyn Telemetry) {
        for (v, h) in self.queue_wait.iter().enumerate() {
            h.report_telemetry(&format!("hmc.vault{v:02}.queue_wait"), sink);
        }
        for (v, h) in self.fu_busy.iter().enumerate() {
            h.report_telemetry(&format!("hmc.vault{v:02}.fu_busy"), sink);
        }
        self.merged_queue_wait()
            .report_telemetry("hmc.queue_wait", sink);
        self.merged_fu_busy().report_telemetry("hmc.fu_busy", sink);
    }

    /// All vaults' bank queue-wait samples folded into one distribution
    /// (cube-level p50/p99 for the attribution report).
    pub fn merged_queue_wait(&self) -> Histogram {
        Self::merge_all(&self.queue_wait, 12)
    }

    /// All vaults' FU-occupancy samples folded into one distribution.
    pub fn merged_fu_busy(&self) -> Histogram {
        Self::merge_all(&self.fu_busy, 6)
    }

    fn merge_all(per_vault: &[Histogram], buckets: usize) -> Histogram {
        let mut merged = Histogram::new(buckets);
        for h in per_vault {
            merged.merge(h);
        }
        merged
    }
}

/// One HMC cube.
#[derive(Debug, Clone)]
pub struct HmcCube {
    flit_cycles: f64,
    link_latency: f64,
    vault_overhead: f64,
    /// Activate + column access: tRCD + tCL.
    access_cycles: f64,
    /// Column access alone (row-buffer hit): tCL.
    column_cycles: f64,
    /// Activate-to-access occupancy: tRCD.
    rcd_cycles: f64,
    /// Column-to-column occupancy of one burst: tCCD.
    burst_cycles: f64,
    /// Precharge: tRP.
    precharge_cycles: f64,
    /// Write-recovery after an atomic's internal writeback.
    write_recovery_cycles: f64,
    fu_op_cycles: f64,
    vaults: usize,
    banks_per_vault: usize,
    interleave: u64,
    /// Shift/mask address mapping when the vault geometry is all powers
    /// of two (the paper's is); `None` falls back to the div/mod of
    /// [`vault_bank_of`]. Three divisions per request add up in the
    /// simulator hot loop.
    vb_fast: Option<VaultBankFast>,
    bank_busy: Vec<Cycle>,
    open_row: Vec<Option<u64>>,
    fu_busy: Vec<Vec<Cycle>>,
    stats: HmcStats,
    vault_telemetry: Option<VaultTelemetry>,
    attrib: Option<HmcAttrib>,
}

/// Precomputed shift/mask form of [`vault_bank_of`] for power-of-two
/// geometries: `block = addr >> interleave_shift`,
/// `vault = block & vault_mask`, `bank = (block >> vault_shift) & bank_mask`.
#[derive(Debug, Clone, Copy)]
struct VaultBankFast {
    interleave_shift: u32,
    vault_mask: u64,
    vault_shift: u32,
    bank_mask: u64,
}

impl VaultBankFast {
    fn for_geometry(vaults: usize, banks_per_vault: usize, interleave: u64) -> Option<Self> {
        if vaults.is_power_of_two()
            && banks_per_vault.is_power_of_two()
            && interleave.is_power_of_two()
        {
            Some(VaultBankFast {
                interleave_shift: interleave.trailing_zeros(),
                vault_mask: vaults as u64 - 1,
                vault_shift: vaults.trailing_zeros(),
                bank_mask: banks_per_vault as u64 - 1,
            })
        } else {
            None
        }
    }

    #[inline]
    fn map(self, addr: u64) -> (usize, usize) {
        let block = addr >> self.interleave_shift;
        (
            (block & self.vault_mask) as usize,
            ((block >> self.vault_shift) & self.bank_mask) as usize,
        )
    }
}

impl HmcCube {
    /// Builds a cube from the configuration, converting nanosecond timing to
    /// cycles at `clock_ghz`.
    ///
    /// # Panics
    ///
    /// Panics if vault/bank/FU counts are zero.
    pub fn new(config: &HmcConfig, clock_ghz: f64) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid HmcConfig: {e}");
        }
        let ns = clock_ghz; // cycles per nanosecond
        HmcCube {
            flit_cycles: config.flit_seconds() * 1e9 * ns,
            link_latency: config.link_latency_ns * ns,
            vault_overhead: config.vault_overhead_ns * ns,
            access_cycles: 2.0 * config.t_cl_ns * ns, // tRCD + tCL
            column_cycles: config.t_cl_ns * ns,
            rcd_cycles: config.t_cl_ns * ns, // tRCD = tCL (Table IV)
            burst_cycles: config.t_ccd_ns * ns,
            precharge_cycles: config.t_cl_ns * ns, // tRP = tCL (Table IV)
            write_recovery_cycles: (config.t_ras_ns - config.t_cl_ns) * ns,
            fu_op_cycles: config.fu_op_ns * ns,
            vaults: config.vaults,
            banks_per_vault: config.banks_per_vault,
            interleave: config.vault_interleave_bytes,
            vb_fast: VaultBankFast::for_geometry(
                config.vaults,
                config.banks_per_vault,
                config.vault_interleave_bytes,
            ),
            bank_busy: vec![0.0; config.vaults * config.banks_per_vault],
            open_row: vec![None; config.vaults * config.banks_per_vault],
            fu_busy: vec![vec![0.0; config.fus_per_vault]; config.vaults],
            stats: HmcStats {
                requests_per_vault: vec![0; config.vaults],
                atomics_per_vault: vec![0; config.vaults],
                ..HmcStats::default()
            },
            vault_telemetry: None,
            attrib: None,
        }
    }

    /// Turns on request-latency attribution (observation-only: it records
    /// quantities the timing path already computed).
    pub fn enable_attribution(&mut self) {
        if self.attrib.is_none() {
            self.attrib = Some(HmcAttrib::default());
        }
    }

    /// The attribution ledger, if enabled.
    pub fn attrib(&self) -> Option<&HmcAttrib> {
        self.attrib.as_ref()
    }

    /// Turns on the per-vault queue-wait / FU-occupancy histograms
    /// (observation-only; timing is unaffected).
    pub fn enable_vault_telemetry(&mut self) {
        if self.vault_telemetry.is_none() {
            self.vault_telemetry = Some(VaultTelemetry::new(self.vaults));
        }
    }

    /// The per-vault histograms, if enabled.
    pub fn vault_telemetry(&self) -> Option<&VaultTelemetry> {
        self.vault_telemetry.as_ref()
    }

    /// Reports traffic statistics plus (when enabled) the per-vault
    /// histograms into `sink`.
    pub fn report_telemetry(&self, sink: &mut dyn Telemetry) {
        self.stats.report_telemetry(sink);
        if let Some(vt) = &self.vault_telemetry {
            vt.report_telemetry(sink);
        }
    }

    /// Number of vaults.
    pub fn vault_count(&self) -> usize {
        self.vaults
    }

    /// Idle round-trip latency of a read (no contention), in cycles.
    pub fn idle_read_latency(&self) -> Cycle {
        let flits = PacketKind::Read64.flits();
        flits.request as f64 * self.flit_cycles
            + self.link_latency
            + self.vault_overhead
            + self.access_cycles
            + flits.response as f64 * self.flit_cycles
            + self.link_latency
    }

    /// Services one transaction arriving at absolute time `now`.
    #[inline]
    pub fn service(&mut self, kind: PacketKind, addr: Addr, now: Cycle) -> HmcServed {
        let cost = kind.flits();

        // Request link serialization delay. The links are vastly
        // over-provisioned for these workloads (the paper's Figure 13
        // shows bandwidth insensitivity), so FIFO queueing between packets
        // is not modeled; utilization is observable via the FLIT counters.
        let req_work = cost.request as f64 * self.flit_cycles;
        let at_cube = now + req_work + self.link_latency;

        // Vault controller.
        let at_vault = at_cube + self.vault_overhead;
        let (vault, bank) = match self.vb_fast {
            Some(fast) => fast.map(addr),
            None => vault_bank_of(addr, self.vaults, self.banks_per_vault, self.interleave),
        };
        let bank_index = vault * self.banks_per_vault + bank;

        // Open-page row-buffer check (DRAMSim2-style): a row hit skips the
        // precharge + activate and pays only the column access.
        self.stats.dram_accesses += 1;
        self.stats.requests_per_vault[vault] += 1;
        let row = addr / ROW_BYTES;
        let row_hit = self.open_row[bank_index] == Some(row);
        let access = if row_hit {
            self.column_cycles
        } else {
            self.stats.dram_activations += 1;
            self.open_row[bank_index] = Some(row);
            self.precharge_cycles + self.access_cycles
        };

        // Bank *occupancy* is shorter than data *latency*: consecutive
        // column accesses to an open row pipeline at tCCD, and an activate
        // occupies the command path for ~tRCD before the next access can
        // start — while the requester still waits the full tCL for data.
        // (Conflating the two saturates hot banks at ~13x below real
        // throughput.) Atomics are the exception: the paper specifies the
        // bank is locked for the whole read-modify-write (Section II-A).
        let base_occupancy = if row_hit {
            self.burst_cycles
        } else {
            self.rcd_cycles + self.burst_cycles
        };

        let mut fu_wait = 0.0;
        let (occupancy, ready_offset, done_offset) = match kind {
            PacketKind::Read64 | PacketKind::Read16 => {
                self.stats.reads += 1;
                self.stats.request_flits_read += cost.request as u64;
                self.stats.response_flits_read += cost.response as u64;
                (base_occupancy, access, access)
            }
            PacketKind::Write64 | PacketKind::Write16 => {
                self.stats.writes += 1;
                self.stats.request_flits_write += cost.request as u64;
                self.stats.response_flits_write += cost.response as u64;
                // Writes are posted: the ack leaves once the vault buffers
                // the data; write recovery holds the bank a little longer.
                let occ = base_occupancy + self.write_recovery_cycles;
                let done = access + self.write_recovery_cycles;
                (occ, 0.0, done)
            }
            PacketKind::Atomic(op) => {
                self.stats.atomics += 1;
                if !op.in_hmc20() {
                    self.stats.fp_atomics += 1;
                }
                self.stats.atomics_per_vault[vault] += 1;
                self.stats.atomics_by_category[op.category().index()] += 1;
                self.stats.fu_busy_cycles += self.fu_op_cycles;
                self.stats.request_flits_atomic += cost.request as u64;
                self.stats.response_flits_atomic += cost.response as u64;
                // The bank stays locked for the whole read-modify-write.
                let rmw = access + self.fu_op_cycles + self.write_recovery_cycles;
                (rmw, access + self.fu_op_cycles, rmw)
            }
        };

        // Bank occupancy: busy-until FIFO (arrivals are near-monotone
        // because the system driver advances the earliest core first).
        // Vault request buffers are finite, so a bank's visible queue is
        // capped: this bounds both real burst queueing and any residual
        // cross-core timestamp skew.
        let bank_start = self.bank_busy[bank_index]
            .min(at_vault + MAX_BANK_QUEUE_CYCLES)
            .max(at_vault);
        let bank_wait = bank_start - at_vault;
        self.stats.bank_wait_cycles += bank_wait;
        if bank_wait > self.stats.bank_wait_max {
            self.stats.bank_wait_max = bank_wait;
        }
        if bank_wait > 500.0 {
            self.stats.bank_wait_long += 1;
        }
        self.bank_busy[bank_index] = bank_start + occupancy;
        if let Some(vt) = &mut self.vault_telemetry {
            vt.queue_wait[vault].record(bank_wait);
        }

        // Atomics additionally contend for the vault FU pool.
        if kind.is_atomic() {
            let data_at = bank_start + access;
            let fus = &mut self.fu_busy[vault];
            if let Some(vt) = &mut self.vault_telemetry {
                // How many FUs were still busy when the operand arrived —
                // the unit-occupancy pressure behind Figure 11.
                let busy = fus.iter().filter(|&&free| free > data_at).count();
                vt.fu_busy[vault].record(busy as f64);
            }
            let (fu_index, fu_free) = fus
                .iter()
                .copied()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN times"))
                .expect("at least one FU");
            let fu_start = fu_free.min(data_at + MAX_BANK_QUEUE_CYCLES).max(data_at);
            fu_wait = fu_start - data_at;
            let fu_done = fu_start + self.fu_op_cycles;
            fus[fu_index] = fu_done;
            self.stats.fu_wait_cycles += fu_wait;
        }

        let ready = bank_start + ready_offset + fu_wait;
        let memory_done = bank_start + done_offset + fu_wait;

        // Response link serialization delay (no FIFO queueing; see above).
        let resp_work = cost.response as f64 * self.flit_cycles;
        let response_at = ready + resp_work + self.link_latency;

        if let Some(a) = &mut self.attrib {
            // `response_at - now` decomposes exactly into these terms;
            // for atomics `ready_offset` includes the FU op, which gets
            // its own bucket.
            let fu = if kind.is_atomic() {
                self.fu_op_cycles
            } else {
                0.0
            };
            a.link += req_work + resp_work + 2.0 * self.link_latency;
            a.vault_overhead += self.vault_overhead;
            a.queue_wait += bank_wait;
            a.dram += ready_offset - fu;
            a.fu_busy += fu;
            a.fu_wait += fu_wait;
            a.total += response_at - now;
        }

        HmcServed {
            response_at,
            memory_done,
            bank_wait,
            fu_wait,
        }
    }

    /// Cycles to serialize one FLIT across the aggregate link budget.
    pub fn flit_time_cycles(&self) -> f64 {
        self.flit_cycles
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> &HmcStats {
        &self.stats
    }

    /// Clears statistics (busy-until state is kept).
    pub fn reset_stats(&mut self) {
        let vaults = self.vaults;
        self.stats = HmcStats {
            requests_per_vault: vec![0; vaults],
            atomics_per_vault: vec![0; vaults],
            ..HmcStats::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::hmc::atomic::HmcAtomicOp;

    fn cube() -> HmcCube {
        let c = SimConfig::hpca_default();
        HmcCube::new(&c.hmc, c.core.clock_ghz)
    }

    #[test]
    fn fast_vault_mapping_matches_div_mod() {
        let fast = VaultBankFast::for_geometry(32, 16, 256).expect("pow2 geometry");
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let addr = x ^ (i * 97);
            assert_eq!(
                fast.map(addr),
                vault_bank_of(addr, 32, 16, 256),
                "addr {addr:#x}"
            );
        }
        assert!(
            VaultBankFast::for_geometry(12, 16, 256).is_none(),
            "non-pow2 vault count must fall back to div/mod"
        );
    }

    #[test]
    fn idle_read_latency_reasonable() {
        let cube = cube();
        let lat = cube.idle_read_latency();
        // ~ (13.75+13.75) ns DRAM + 2x4 ns links + 2 ns vault at 2 GHz
        // = ~75 cycles; allow generous bounds.
        assert!(lat > 50.0 && lat < 120.0, "idle read latency {lat}");
    }

    #[test]
    fn read_response_after_arrival() {
        let mut cube = cube();
        let served = cube.service(PacketKind::Read64, 0x1000, 100.0);
        assert!(served.response_at > 100.0);
        assert_eq!(served.bank_wait, 0.0);
    }

    #[test]
    fn same_bank_back_to_back_queues() {
        let mut cube = cube();
        let a = cube.service(PacketKind::Read64, 0x0, 0.0);
        let b = cube.service(PacketKind::Read64, 0x0, 0.0);
        assert_eq!(a.bank_wait, 0.0);
        assert!(b.bank_wait > 0.0, "second access should queue");
        // The second access row-hits (shorter latency), so it may respond
        // earlier in absolute terms, but never before its own queue wait.
        assert!(b.response_at > b.bank_wait);
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut cube = cube();
        let miss = cube.service(PacketKind::Read64, 0x0, 0.0);
        // Same 2 KB row, far enough apart in time that the bank is idle.
        let hit = cube.service(PacketKind::Read64, 0x40, 10_000.0);
        assert_eq!(hit.bank_wait, 0.0);
        assert!(
            hit.response_at - 10_000.0 < miss.response_at,
            "row hit {h} vs miss {m}",
            h = hit.response_at - 10_000.0,
            m = miss.response_at
        );
    }

    #[test]
    fn different_row_same_bank_activates() {
        let mut cube = cube();
        cube.service(PacketKind::Read64, 0x0, 0.0);
        // vault/bank repeat every 32*256 bytes; jump 512 rows ahead on the
        // same bank via a multiple of the full interleave span.
        let other_row = 32 * 256 * 1024;
        cube.service(PacketKind::Read64, other_row, 50_000.0);
        assert_eq!(cube.stats().dram_activations, 2);
    }

    #[test]
    fn different_vaults_do_not_queue_on_bank() {
        let mut cube = cube();
        cube.service(PacketKind::Read64, 0, 0.0);
        let b = cube.service(PacketKind::Read64, 256, 0.0); // next vault
        assert_eq!(b.bank_wait, 0.0);
    }

    #[test]
    fn atomic_locks_bank_longer_than_read() {
        let mut a_cube = cube();
        let mut r_cube = cube();
        a_cube.service(PacketKind::Atomic(HmcAtomicOp::CasIfEqual8), 0, 0.0);
        r_cube.service(PacketKind::Read64, 0, 0.0);
        let after_atomic = a_cube.service(PacketKind::Read64, 0, 0.0);
        let after_read = r_cube.service(PacketKind::Read64, 0, 0.0);
        assert!(
            after_atomic.bank_wait > after_read.bank_wait,
            "RMW should lock the bank longer ({} vs {})",
            after_atomic.bank_wait,
            after_read.bank_wait
        );
    }

    #[test]
    fn single_fu_serializes_vault_atomics() {
        let config = SimConfig::hpca_default();
        let mut narrow = config.hmc.clone();
        narrow.fus_per_vault = 1;
        // Make the FU slow so the serialization is visible over bank timing.
        narrow.fu_op_ns = 50.0;
        let mut cube = HmcCube::new(&narrow, config.core.clock_ghz);
        // Same vault, different banks: bank-parallel but FU-serial.
        let a = cube.service(PacketKind::Atomic(HmcAtomicOp::Add16), 0, 0.0);
        let addr_same_vault_other_bank = 256 * 32; // vault 0, bank 1
        let b = cube.service(
            PacketKind::Atomic(HmcAtomicOp::Add16),
            addr_same_vault_other_bank,
            0.0,
        );
        assert_eq!(a.fu_wait, 0.0);
        assert!(b.fu_wait > 0.0, "second atomic must wait for the single FU");
    }

    #[test]
    fn many_fus_avoid_fu_wait() {
        let config = SimConfig::hpca_default();
        let mut cube = HmcCube::new(&config.hmc, config.core.clock_ghz);
        let a = cube.service(PacketKind::Atomic(HmcAtomicOp::Add16), 0, 0.0);
        let b = cube.service(PacketKind::Atomic(HmcAtomicOp::Add16), 256 * 32, 0.0);
        assert_eq!(a.fu_wait, 0.0);
        assert_eq!(b.fu_wait, 0.0);
    }

    #[test]
    fn stats_track_flits_by_class() {
        let mut cube = cube();
        cube.service(PacketKind::Read64, 0, 0.0);
        cube.service(PacketKind::Write64, 64, 0.0);
        cube.service(PacketKind::Atomic(HmcAtomicOp::Add16), 128, 0.0);
        let s = cube.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.atomics, 1);
        assert_eq!(s.request_flits_read, 1);
        assert_eq!(s.response_flits_read, 5);
        assert_eq!(s.request_flits_write, 5);
        assert_eq!(s.request_flits_atomic, 2);
        assert_eq!(s.response_flits_atomic, 1);
        assert_eq!(s.total_flits(), 15);
        assert_eq!(s.dram_accesses, 3);
        // Addresses 0/64/128 share one 2 KB row: only the first activates.
        assert_eq!(s.dram_activations, 1);
    }

    #[test]
    fn atomics_per_vault_counted() {
        let mut cube = cube();
        cube.service(PacketKind::Atomic(HmcAtomicOp::Add16), 0, 0.0);
        cube.service(PacketKind::Atomic(HmcAtomicOp::Add16), 256, 0.0);
        cube.service(PacketKind::Read64, 0, 0.0);
        let s = cube.stats();
        assert_eq!(s.atomics_per_vault[0], 1);
        assert_eq!(s.atomics_per_vault[1], 1);
        // Every serviced transaction lands in exactly one vault bucket,
        // and atomics are a subset of each vault's requests.
        assert_eq!(s.requests_per_vault[0], 2);
        assert_eq!(s.requests_per_vault[1], 1);
        assert_eq!(s.requests_per_vault.iter().sum::<u64>(), s.dram_accesses);
        for (r, a) in s.requests_per_vault.iter().zip(&s.atomics_per_vault) {
            assert!(a <= r);
        }
    }

    #[test]
    fn atomics_counted_by_category() {
        let mut cube = cube();
        cube.service(PacketKind::Atomic(HmcAtomicOp::Add16), 0, 0.0);
        cube.service(PacketKind::Atomic(HmcAtomicOp::Swap16), 256, 0.0);
        cube.service(PacketKind::Atomic(HmcAtomicOp::Xor16), 512, 0.0);
        cube.service(PacketKind::Atomic(HmcAtomicOp::CasIfEqual8), 768, 0.0);
        cube.service(PacketKind::Atomic(HmcAtomicOp::FpAdd64), 1024, 0.0);
        cube.service(PacketKind::Atomic(HmcAtomicOp::FpAdd32), 1280, 0.0);
        assert_eq!(cube.stats().atomics_by_category, [1, 1, 1, 1, 2]);
        let mut reg = crate::telemetry::CounterRegistry::default();
        cube.report_telemetry(&mut reg);
        assert_eq!(reg.get("hmc.atomic.float_extension"), Some(2.0));
        assert_eq!(reg.get("hmc.atomics"), Some(6.0));
        assert_eq!(reg.get("hmc.vault00.atomics"), Some(1.0));
        assert_eq!(reg.get("hmc.vault00.requests"), Some(1.0));
        // Histograms are off by default: no per-vault distribution keys.
        assert_eq!(reg.get("hmc.vault00.queue_wait.count"), None);
    }

    #[test]
    fn vault_telemetry_records_without_changing_timing() {
        let run = |telemetry: bool| {
            let mut c = cube();
            if telemetry {
                c.enable_vault_telemetry();
            }
            let mut served = Vec::new();
            for i in 0..64u64 {
                // Hammer two banks with a mix of reads and atomics.
                let addr = (i % 2) * 8192;
                let kind = if i % 3 == 0 {
                    PacketKind::Atomic(HmcAtomicOp::Add16)
                } else {
                    PacketKind::Read64
                };
                served.push(c.service(kind, addr, i as f64));
            }
            (c, served)
        };
        let (plain, served_plain) = run(false);
        let (traced, served_traced) = run(true);
        // Observation only: every timing result is bit-identical.
        assert_eq!(served_plain, served_traced);
        assert_eq!(plain.stats(), traced.stats());
        assert!(plain.vault_telemetry().is_none());
        let vt = traced.vault_telemetry().expect("enabled");
        // Every transaction sampled the queue-wait histogram of its vault.
        let sampled: u64 = (0..traced.vault_count())
            .map(|v| vt.queue_wait(v).count())
            .sum();
        assert_eq!(sampled, 64);
        // Histogram sample counts agree with the per-vault request counters.
        for v in 0..traced.vault_count() {
            assert_eq!(
                vt.queue_wait(v).count(),
                traced.stats().requests_per_vault[v]
            );
            assert_eq!(vt.fu_busy(v).count(), traced.stats().atomics_per_vault[v]);
        }
        let fu_samples: u64 = (0..traced.vault_count())
            .map(|v| vt.fu_busy(v).count())
            .sum();
        assert_eq!(fu_samples, traced.stats().atomics);
        // The hammered banks actually queued.
        assert!(vt.queue_wait(0).max() > 0.0);
    }

    #[test]
    fn attribution_closes_over_request_latency() {
        let mut c = cube();
        c.enable_attribution();
        let mut latency_sum = 0.0;
        for i in 0..96u64 {
            let addr = (i % 3) * 8192;
            let kind = match i % 4 {
                0 => PacketKind::Atomic(HmcAtomicOp::Add16),
                1 => PacketKind::Write64,
                _ => PacketKind::Read64,
            };
            let served = c.service(kind, addr, i as f64 * 2.0);
            latency_sum += served.response_at - i as f64 * 2.0;
        }
        let a = c.attrib().expect("enabled");
        assert!(
            (a.total - latency_sum).abs() < 1e-6 * latency_sum.max(1.0),
            "{} vs {latency_sum}",
            a.total
        );
        assert!(
            (a.components_sum() - a.total).abs() < 1e-6 * a.total.max(1.0),
            "components {} vs total {}",
            a.components_sum(),
            a.total
        );
        assert!(a.link > 0.0 && a.dram > 0.0 && a.fu_busy > 0.0);
        assert!(a.queue_wait > 0.0, "hammered banks must queue");
    }

    #[test]
    fn attribution_off_by_default_and_timing_identical() {
        let run = |on: bool| {
            let mut c = cube();
            if on {
                c.enable_attribution();
            }
            (0..64u64)
                .map(|i| c.service(PacketKind::Read64, (i % 2) * 64, i as f64))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
        assert!(cube().attrib().is_none());
    }

    #[test]
    fn merged_histograms_aggregate_all_vaults() {
        let mut c = cube();
        c.enable_vault_telemetry();
        for i in 0..64u64 {
            let kind = if i % 3 == 0 {
                PacketKind::Atomic(HmcAtomicOp::Add16)
            } else {
                PacketKind::Read64
            };
            // Spread across several vaults, with repeats to force queueing.
            c.service(kind, (i % 4) * 256, 0.0);
        }
        let vt = c.vault_telemetry().expect("enabled");
        let merged = vt.merged_queue_wait();
        assert_eq!(merged.count(), c.stats().dram_accesses);
        let per_vault_max = (0..c.vault_count())
            .map(|v| vt.queue_wait(v).max())
            .fold(0.0, f64::max);
        assert_eq!(merged.max(), per_vault_max);
        assert_eq!(vt.merged_fu_busy().count(), c.stats().atomics);
        // The cube-level summary lands in the registry.
        let mut reg = crate::telemetry::CounterRegistry::default();
        c.report_telemetry(&mut reg);
        assert_eq!(reg.get("hmc.queue_wait.count"), Some(merged.count() as f64));
        assert!(reg.get("hmc.queue_wait.p99").is_some());
        assert!(reg.get("hmc.fu_busy.p50").is_some());
    }

    #[test]
    fn write_ack_is_posted() {
        let mut cube = cube();
        let w = cube.service(PacketKind::Write64, 0, 0.0);
        // The ack can return before the DRAM write completes.
        assert!(w.response_at < w.memory_done + 100.0);
        assert!(w.memory_done > 0.0);
    }

    #[test]
    fn reset_stats_clears_but_keeps_time() {
        let mut cube = cube();
        cube.service(PacketKind::Read64, 0, 0.0);
        cube.reset_stats();
        assert_eq!(cube.stats().reads, 0);
        assert_eq!(cube.stats().atomics_per_vault.len(), 32);
        assert_eq!(cube.stats().requests_per_vault.len(), 32);
        assert_eq!(cube.stats().requests_per_vault.iter().sum::<u64>(), 0);
        // Bank is still busy from before the reset.
        let again = cube.service(PacketKind::Read64, 0, 0.0);
        assert!(again.bank_wait > 0.0);
    }

    #[test]
    fn half_bandwidth_doubles_serialization() {
        let config = SimConfig::hpca_default();
        let mut half = config.hmc.clone();
        half.link_gbps /= 2.0;
        let full_cube = HmcCube::new(&config.hmc, 2.0);
        let half_cube = HmcCube::new(&half, 2.0);
        assert!(half_cube.flit_time_cycles() > full_cube.flit_time_cycles());
    }
}
