//! Link packet classes and their FLIT costs (Table V).
//!
//! HMC links speak a packet protocol whose unit is the 128-bit FLIT.
//! A 64-byte data payload is 4 FLITs; every packet carries one more FLIT of
//! header/tail. Table V of the paper gives the resulting costs, reproduced
//! here verbatim; the 16-byte sub-block accesses (supported by HMC 2.0 in
//! 16-byte increments) are used for uncacheable PMR loads/stores.

use super::atomic::HmcAtomicOp;
use serde::{Deserialize, Serialize};

/// FLIT cost of one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlitCost {
    /// FLITs on the request (host → cube) direction.
    pub request: u32,
    /// FLITs on the response (cube → host) direction.
    pub response: u32,
}

impl FlitCost {
    /// Total FLITs in both directions.
    pub fn total(self) -> u32 {
        self.request + self.response
    }
}

/// A memory transaction class on the HMC links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// 64-byte cache-line read (line fill).
    Read64,
    /// 64-byte cache-line write (dirty writeback).
    Write64,
    /// 16-byte sub-block read (uncacheable PMR load).
    Read16,
    /// 16-byte sub-block write (uncacheable PMR store).
    Write16,
    /// An atomic command.
    Atomic(HmcAtomicOp),
}

impl PacketKind {
    /// FLIT cost of this transaction (Table V).
    pub fn flits(self) -> FlitCost {
        match self {
            // 64-byte READ: 1 request FLIT, 5 response FLITs.
            PacketKind::Read64 => FlitCost {
                request: 1,
                response: 5,
            },
            // 64-byte WRITE: 5 request FLITs, 1 response FLIT.
            PacketKind::Write64 => FlitCost {
                request: 5,
                response: 1,
            },
            // 16-byte sub-block read: header/tail + 16B data response.
            PacketKind::Read16 => FlitCost {
                request: 1,
                response: 2,
            },
            // 16-byte sub-block write: header/tail + 16B data request.
            PacketKind::Write16 => FlitCost {
                request: 2,
                response: 1,
            },
            PacketKind::Atomic(op) => FlitCost {
                request: op.request_flits(),
                response: op.response_flits(),
            },
        }
    }

    /// Whether the issuing core must wait for the response (reads and
    /// returning atomics) or the packet is posted.
    pub fn expects_data(self) -> bool {
        match self {
            PacketKind::Read64 | PacketKind::Read16 => true,
            PacketKind::Write64 | PacketKind::Write16 => false,
            PacketKind::Atomic(op) => op.has_return(),
        }
    }

    /// Whether this transaction needs an atomic functional unit.
    pub fn is_atomic(self) -> bool {
        matches!(self, PacketKind::Atomic(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_read_write_64() {
        assert_eq!(
            PacketKind::Read64.flits(),
            FlitCost {
                request: 1,
                response: 5
            }
        );
        assert_eq!(
            PacketKind::Write64.flits(),
            FlitCost {
                request: 5,
                response: 1
            }
        );
        assert_eq!(PacketKind::Read64.flits().total(), 6);
    }

    #[test]
    fn table5_atomics_cheaper_than_line_transfers() {
        for op in HmcAtomicOp::HMC20_SET {
            let atomic = PacketKind::Atomic(op).flits().total();
            assert!(
                atomic < PacketKind::Read64.flits().total(),
                "{op}: {atomic} flits"
            );
        }
    }

    #[test]
    fn table5_add_rows() {
        let no_ret = PacketKind::Atomic(HmcAtomicOp::Add16).flits();
        assert_eq!((no_ret.request, no_ret.response), (2, 1));
        let with_ret = PacketKind::Atomic(HmcAtomicOp::Add16Ret).flits();
        assert_eq!((with_ret.request, with_ret.response), (2, 2));
        let cas = PacketKind::Atomic(HmcAtomicOp::CasIfEqual8).flits();
        assert_eq!((cas.request, cas.response), (2, 2));
        let cmp = PacketKind::Atomic(HmcAtomicOp::CompareEqual16).flits();
        assert_eq!((cmp.request, cmp.response), (2, 1));
    }

    #[test]
    fn sub_block_cheaper_than_line() {
        assert!(PacketKind::Read16.flits().total() < PacketKind::Read64.flits().total());
        assert!(PacketKind::Write16.flits().total() < PacketKind::Write64.flits().total());
    }

    #[test]
    fn expects_data_classification() {
        assert!(PacketKind::Read64.expects_data());
        assert!(!PacketKind::Write16.expects_data());
        assert!(PacketKind::Atomic(HmcAtomicOp::CasIfEqual8).expects_data());
        assert!(!PacketKind::Atomic(HmcAtomicOp::Add16).expects_data());
    }

    #[test]
    fn is_atomic_classification() {
        assert!(PacketKind::Atomic(HmcAtomicOp::Xor16).is_atomic());
        assert!(!PacketKind::Read16.is_atomic());
    }
}
