//! Derived statistics shared by the experiment drivers.

use crate::cpu::CoreStats;
use serde::{Deserialize, Serialize};

/// Top-down cycle breakdown in the style of Figure 2 (Yasin's top-down
/// methodology as exposed by Intel counters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Fraction of cycles retiring useful work.
    pub retiring: f64,
    /// Fraction lost to frontend stalls.
    pub frontend: f64,
    /// Fraction lost to misprediction recovery.
    pub bad_speculation: f64,
    /// Fraction lost to backend (memory and execution) stalls.
    pub backend: f64,
}

impl CycleBreakdown {
    /// Computes the breakdown from aggregated core statistics and the total
    /// elapsed cycles.
    ///
    /// The attributed fractions can overshoot 1.0 when counters are
    /// inconsistent with the elapsed time (e.g. an over-wide `issue_width`
    /// makes retiring cycles exceed `total_cycles`). Rather than clamping
    /// only `backend` — which lets `sum()` exceed 1.0 and mis-normalizes
    /// the stacked figures — the three attributed fractions are rescaled
    /// to fit and `backend` absorbs only genuine remainder, so the result
    /// always satisfies `sum() == 1` up to rounding.
    ///
    /// # Panics
    ///
    /// Panics if `total_cycles` is not positive.
    pub fn from_stats(stats: &CoreStats, issue_width: u32, total_cycles: f64) -> Self {
        assert!(total_cycles > 0.0, "total cycles must be positive");
        let mut retiring = stats.retiring_cycles(issue_width) / total_cycles;
        let mut frontend = stats.frontend_cycles / total_cycles;
        let mut bad_speculation = stats.badspec_cycles / total_cycles;
        let attributed = retiring + frontend + bad_speculation;
        if attributed > 1.0 {
            let scale = 1.0 / attributed;
            retiring *= scale;
            frontend *= scale;
            bad_speculation *= scale;
        }
        let backend = (1.0 - retiring - frontend - bad_speculation).max(0.0);
        CycleBreakdown {
            retiring,
            frontend,
            bad_speculation,
            backend,
        }
    }

    /// The four fractions sum (always ~1 after renormalization).
    pub fn sum(&self) -> f64 {
        self.retiring + self.frontend + self.bad_speculation + self.backend
    }
}

/// Misses per kilo-instruction.
pub fn mpki(misses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        misses as f64 * 1000.0 / instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_to_one() {
        let stats = CoreStats {
            instructions: 400,
            frontend_cycles: 20.0,
            badspec_cycles: 30.0,
            ..CoreStats::default()
        };
        let b = CycleBreakdown::from_stats(&stats, 4, 1000.0);
        assert!((b.sum() - 1.0).abs() < 1e-9);
        assert!((b.retiring - 0.1).abs() < 1e-9);
        assert!((b.frontend - 0.02).abs() < 1e-9);
        assert!((b.bad_speculation - 0.03).abs() < 1e-9);
        assert!((b.backend - 0.85).abs() < 1e-9);
    }

    #[test]
    fn backend_clamped_at_zero() {
        let stats = CoreStats {
            instructions: 8000,
            ..CoreStats::default()
        };
        // Over-retired scenario: retiring alone would be 2.0; it is
        // renormalized to exactly 1.0 with nothing left for backend.
        let b = CycleBreakdown::from_stats(&stats, 4, 1000.0);
        assert_eq!(b.backend, 0.0);
        assert!((b.retiring - 1.0).abs() < 1e-12);
        assert!((b.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overshoot_renormalizes_all_fractions() {
        // retiring 2.0, frontend 0.5, badspec 0.5 → attributed 3.0;
        // scaled by 1/3 the proportions survive and the sum is 1.
        let stats = CoreStats {
            instructions: 8000,
            frontend_cycles: 500.0,
            badspec_cycles: 500.0,
            ..CoreStats::default()
        };
        let b = CycleBreakdown::from_stats(&stats, 4, 1000.0);
        assert!((b.retiring - 2.0 / 3.0).abs() < 1e-12);
        assert!((b.frontend - 1.0 / 6.0).abs() < 1e-12);
        assert!((b.bad_speculation - 1.0 / 6.0).abs() < 1e-12);
        assert!(b.backend < 1e-12); // only rounding residue remains
        assert!((b.sum() - 1.0).abs() < 1e-12);
        // The healthy path is untouched by renormalization.
        let ok = CycleBreakdown::from_stats(
            &CoreStats {
                instructions: 400,
                frontend_cycles: 20.0,
                badspec_cycles: 30.0,
                ..CoreStats::default()
            },
            4,
            1000.0,
        );
        assert!((ok.sum() - 1.0).abs() < 1e-9);
        assert!((ok.backend - 0.85).abs() < 1e-9);
    }

    #[test]
    fn mpki_formula() {
        assert_eq!(mpki(5, 1000), 5.0);
        assert_eq!(mpki(0, 1000), 0.0);
        assert_eq!(mpki(10, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cycles_panics() {
        CycleBreakdown::from_stats(&CoreStats::default(), 4, 0.0);
    }
}
