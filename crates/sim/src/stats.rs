//! Derived statistics shared by the experiment drivers.

use crate::cpu::CoreStats;
use serde::{Deserialize, Serialize};

/// Top-down cycle breakdown in the style of Figure 2 (Yasin's top-down
/// methodology as exposed by Intel counters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Fraction of cycles retiring useful work.
    pub retiring: f64,
    /// Fraction lost to frontend stalls.
    pub frontend: f64,
    /// Fraction lost to misprediction recovery.
    pub bad_speculation: f64,
    /// Fraction lost to backend (memory and execution) stalls.
    pub backend: f64,
}

/// A cycle-breakdown conservation violation: the attributed fractions
/// (retiring + frontend + bad-speculation) exceeded the elapsed cycles.
///
/// Real simulator runs never produce this — each core's attributed work
/// is bounded by its own clock — so an overshoot means the counters and
/// the elapsed time came from inconsistent sources (e.g. a mis-scaled
/// `issue_width` or a truncated `total_cycles`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownError {
    /// The attributed fraction sum that exceeded 1.
    pub attributed: f64,
    /// The breakdown after rescaling the attributed fractions to fit
    /// (the pre-validation-layer fallback behavior).
    pub renormalized: CycleBreakdown,
}

impl std::fmt::Display for BreakdownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle-breakdown conservation violated: attributed fractions sum \
             to {:.6} > 1 (retiring + frontend + bad-speculation exceed the \
             elapsed cycles)",
            self.attributed
        )
    }
}

impl std::error::Error for BreakdownError {}

/// Attributed sums up to this far above 1.0 are treated as floating-point
/// rounding, not a conservation violation.
const BREAKDOWN_TOLERANCE: f64 = 1e-9;

impl CycleBreakdown {
    /// Computes the breakdown from aggregated core statistics and the total
    /// elapsed cycles, reporting overshoot as an error.
    ///
    /// When the attributed fractions (retiring + frontend +
    /// bad-speculation) sum above 1 beyond rounding tolerance, the counters
    /// are inconsistent with the elapsed time; `Err` carries both the
    /// overshooting sum and the renormalized fallback breakdown.
    ///
    /// # Panics
    ///
    /// Panics if `total_cycles` is not positive.
    pub fn try_from_stats(
        stats: &CoreStats,
        issue_width: u32,
        total_cycles: f64,
    ) -> Result<Self, BreakdownError> {
        assert!(total_cycles > 0.0, "total cycles must be positive");
        let mut retiring = stats.retiring_cycles(issue_width) / total_cycles;
        let mut frontend = stats.frontend_cycles / total_cycles;
        let mut bad_speculation = stats.badspec_cycles / total_cycles;
        let attributed = retiring + frontend + bad_speculation;
        let overshoot = attributed > 1.0 + BREAKDOWN_TOLERANCE;
        if attributed > 1.0 {
            let scale = 1.0 / attributed;
            retiring *= scale;
            frontend *= scale;
            bad_speculation *= scale;
        }
        let backend = (1.0 - retiring - frontend - bad_speculation).max(0.0);
        let breakdown = CycleBreakdown {
            retiring,
            frontend,
            bad_speculation,
            backend,
        };
        if overshoot {
            Err(BreakdownError {
                attributed,
                renormalized: breakdown,
            })
        } else {
            Ok(breakdown)
        }
    }

    /// Like [`Self::try_from_stats`], but an overshoot panics instead of
    /// renormalizing. This is the behavior [`Self::from_stats`] takes when
    /// `GRAPHPIM_VALIDATE` is on.
    ///
    /// # Panics
    ///
    /// Panics if `total_cycles` is not positive or the attributed
    /// fractions overshoot 1.
    pub fn from_stats_strict(stats: &CoreStats, issue_width: u32, total_cycles: f64) -> Self {
        match Self::try_from_stats(stats, issue_width, total_cycles) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Computes the breakdown from aggregated core statistics and the total
    /// elapsed cycles.
    ///
    /// Overshooting attributed fractions are a conservation violation:
    /// with `GRAPHPIM_VALIDATE` on (the default under `cargo test`; see
    /// [`crate::validate::validation_enabled`]) this panics via
    /// [`Self::from_stats_strict`]. With validation off it falls back to
    /// rescaling the three attributed fractions to fit — `backend` absorbs
    /// only genuine remainder, so the result always satisfies `sum() == 1`
    /// up to rounding.
    ///
    /// # Panics
    ///
    /// Panics if `total_cycles` is not positive, or on overshoot while
    /// validation is enabled.
    pub fn from_stats(stats: &CoreStats, issue_width: u32, total_cycles: f64) -> Self {
        if crate::validate::validation_enabled() {
            Self::from_stats_strict(stats, issue_width, total_cycles)
        } else {
            match Self::try_from_stats(stats, issue_width, total_cycles) {
                Ok(b) => b,
                Err(e) => e.renormalized,
            }
        }
    }

    /// The four fractions sum (always ~1 after renormalization).
    pub fn sum(&self) -> f64 {
        self.retiring + self.frontend + self.bad_speculation + self.backend
    }
}

/// Misses per kilo-instruction.
pub fn mpki(misses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        misses as f64 * 1000.0 / instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_to_one() {
        let stats = CoreStats {
            instructions: 400,
            frontend_cycles: 20.0,
            badspec_cycles: 30.0,
            ..CoreStats::default()
        };
        let b = CycleBreakdown::from_stats(&stats, 4, 1000.0);
        assert!((b.sum() - 1.0).abs() < 1e-9);
        assert!((b.retiring - 0.1).abs() < 1e-9);
        assert!((b.frontend - 0.02).abs() < 1e-9);
        assert!((b.bad_speculation - 0.03).abs() < 1e-9);
        assert!((b.backend - 0.85).abs() < 1e-9);
    }

    #[test]
    fn backend_clamped_at_zero() {
        let stats = CoreStats {
            instructions: 8000,
            ..CoreStats::default()
        };
        // Over-retired scenario: retiring alone would be 2.0 — a
        // conservation violation. The error carries the renormalized
        // fallback: exactly 1.0 retiring with nothing left for backend.
        let err = CycleBreakdown::try_from_stats(&stats, 4, 1000.0).unwrap_err();
        assert!((err.attributed - 2.0).abs() < 1e-12);
        let b = err.renormalized;
        assert_eq!(b.backend, 0.0);
        assert!((b.retiring - 1.0).abs() < 1e-12);
        assert!((b.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overshoot_is_a_violation_with_renormalized_fallback() {
        // retiring 2.0, frontend 0.5, badspec 0.5 → attributed 3.0;
        // scaled by 1/3 the proportions survive and the sum is 1.
        let stats = CoreStats {
            instructions: 8000,
            frontend_cycles: 500.0,
            badspec_cycles: 500.0,
            ..CoreStats::default()
        };
        let err = CycleBreakdown::try_from_stats(&stats, 4, 1000.0).unwrap_err();
        assert!((err.attributed - 3.0).abs() < 1e-12);
        assert!(err.to_string().contains("conservation violated"));
        let b = err.renormalized;
        assert!((b.retiring - 2.0 / 3.0).abs() < 1e-12);
        assert!((b.frontend - 1.0 / 6.0).abs() < 1e-12);
        assert!((b.bad_speculation - 1.0 / 6.0).abs() < 1e-12);
        assert!(b.backend < 1e-12); // only rounding residue remains
        assert!((b.sum() - 1.0).abs() < 1e-12);
        // The healthy path is Ok and untouched by renormalization.
        let ok = CycleBreakdown::try_from_stats(
            &CoreStats {
                instructions: 400,
                frontend_cycles: 20.0,
                badspec_cycles: 30.0,
                ..CoreStats::default()
            },
            4,
            1000.0,
        )
        .expect("consistent counters");
        assert!((ok.sum() - 1.0).abs() < 1e-9);
        assert!((ok.backend - 0.85).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "conservation violated")]
    fn strict_breakdown_panics_on_overshoot() {
        let stats = CoreStats {
            instructions: 8000,
            ..CoreStats::default()
        };
        CycleBreakdown::from_stats_strict(&stats, 4, 1000.0);
    }

    #[test]
    fn mpki_formula() {
        assert_eq!(mpki(5, 1000), 5.0);
        assert_eq!(mpki(0, 1000), 0.0);
        assert_eq!(mpki(10, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cycles_panics() {
        CycleBreakdown::from_stats(&CoreStats::default(), 4, 0.0);
    }
}
