//! Derived statistics shared by the experiment drivers.

use crate::cpu::CoreStats;
use serde::{Deserialize, Serialize};

/// Top-down cycle breakdown in the style of Figure 2 (Yasin's top-down
/// methodology as exposed by Intel counters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Fraction of cycles retiring useful work.
    pub retiring: f64,
    /// Fraction lost to frontend stalls.
    pub frontend: f64,
    /// Fraction lost to misprediction recovery.
    pub bad_speculation: f64,
    /// Fraction lost to backend (memory and execution) stalls.
    pub backend: f64,
}

impl CycleBreakdown {
    /// Computes the breakdown from aggregated core statistics and the total
    /// elapsed cycles.
    ///
    /// # Panics
    ///
    /// Panics if `total_cycles` is not positive.
    pub fn from_stats(stats: &CoreStats, issue_width: u32, total_cycles: f64) -> Self {
        assert!(total_cycles > 0.0, "total cycles must be positive");
        let retiring = stats.retiring_cycles(issue_width) / total_cycles;
        let frontend = stats.frontend_cycles / total_cycles;
        let bad_speculation = stats.badspec_cycles / total_cycles;
        let backend = (1.0 - retiring - frontend - bad_speculation).max(0.0);
        CycleBreakdown {
            retiring,
            frontend,
            bad_speculation,
            backend,
        }
    }

    /// The four fractions sum (should be ~1 unless clipped).
    pub fn sum(&self) -> f64 {
        self.retiring + self.frontend + self.bad_speculation + self.backend
    }
}

/// Misses per kilo-instruction.
pub fn mpki(misses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        misses as f64 * 1000.0 / instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_to_one() {
        let stats = CoreStats {
            instructions: 400,
            frontend_cycles: 20.0,
            badspec_cycles: 30.0,
            ..CoreStats::default()
        };
        let b = CycleBreakdown::from_stats(&stats, 4, 1000.0);
        assert!((b.sum() - 1.0).abs() < 1e-9);
        assert!((b.retiring - 0.1).abs() < 1e-9);
        assert!((b.frontend - 0.02).abs() < 1e-9);
        assert!((b.bad_speculation - 0.03).abs() < 1e-9);
        assert!((b.backend - 0.85).abs() < 1e-9);
    }

    #[test]
    fn backend_clamped_at_zero() {
        let stats = CoreStats {
            instructions: 8000,
            ..CoreStats::default()
        };
        let b = CycleBreakdown::from_stats(&stats, 4, 1000.0);
        assert_eq!(b.backend, 0.0);
        assert!(b.retiring > 1.0); // over-retired: clipped scenario
    }

    #[test]
    fn mpki_formula() {
        assert_eq!(mpki(5, 1000), 5.0);
        assert_eq!(mpki(0, 1000), 0.0);
        assert_eq!(mpki(10, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cycles_panics() {
        CycleBreakdown::from_stats(&CoreStats::default(), 4, 0.0);
    }
}
