//! Three-level inclusive cache hierarchy with MESI-lite coherence.
//!
//! Geometry and latencies follow Table IV: per-core 32 KB L1 and 256 KB L2,
//! one shared 16 MB L3, 64-byte lines. Coherence is modeled at the cost
//! level rather than as a full protocol state machine: the hierarchy tracks
//! which cores' private caches hold each line, charges an invalidation
//! penalty when a write/atomic needs exclusive ownership of a shared line,
//! and maintains inclusion (an L3 eviction back-invalidates every private
//! copy). This captures the coherence-traffic component of host-atomic
//! overhead that Figure 9 attributes to `Atomic-inCache`.

use std::collections::HashMap;

use super::addr::{line_of, Addr};
use super::cache::Cache;
use crate::attrib::CacheAttrib;
use crate::config::CacheConfig;
use crate::telemetry::Telemetry;

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Hit in the core's private L1.
    L1,
    /// Hit in the core's private L2.
    L2,
    /// Hit in the shared L3.
    L3,
    /// Missed everywhere; main memory (HMC) must service it.
    Memory,
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessOutcome {
    /// Cycles spent checking (and filling) the hierarchy. Excludes main
    /// memory service time — the memory system adds that when
    /// `level == Memory`.
    pub latency: u32,
    /// Where the line was found.
    pub level: ServiceLevel,
    /// Dirty lines pushed out to main memory by this access (L3 victims).
    pub writebacks: Vec<Addr>,
    /// Number of remote private copies invalidated to gain ownership.
    pub invalidated_sharers: u32,
}

/// Result of one hierarchy access when the caller supplies the writeback
/// buffer — the allocation-free counterpart of [`AccessOutcome`], used by
/// the simulator hot loop (see [`CacheHierarchy::access_into`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycles spent checking (and filling) the hierarchy.
    pub latency: u32,
    /// Where the line was found.
    pub level: ServiceLevel,
    /// Number of remote private copies invalidated to gain ownership.
    pub invalidated_sharers: u32,
}

/// Hash state for the sharers map: a splitmix64-style finalizer over the
/// line address. Line addresses are multiples of the line size, so a bare
/// multiplicative hash would leave the low hash bits — the ones hashbrown
/// picks buckets with — permanently zero and cluster every key; the
/// xor-shift finalizer mixes every input bit downward. Deterministic
/// (unlike the default SipHash's random keys), which is timing-invisible
/// here: the map is only probed point-wise, never iterated, so hash order
/// cannot influence metrics.
#[derive(Debug, Clone, Copy, Default)]
struct LineHash(u64);

impl std::hash::Hasher for LineHash {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut z = self.0 ^ n;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LineHashBuilder;

impl std::hash::BuildHasher for LineHashBuilder {
    type Hasher = LineHash;

    fn build_hasher(&self) -> LineHash {
        LineHash::default()
    }
}

/// Per-level aggregate hit/miss counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelCounts {
    /// Hits at this level.
    pub hits: u64,
    /// Misses at this level.
    pub misses: u64,
}

impl LevelCounts {
    /// Miss ratio in `[0, 1]`; 0 when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Reports hits and misses under `prefix` (e.g. `mem.l1`).
    pub fn report_telemetry(&self, prefix: &str, sink: &mut dyn Telemetry) {
        sink.record(&format!("{prefix}.hits"), self.hits as f64);
        sink.record(&format!("{prefix}.misses"), self.misses as f64);
    }
}

/// The full hierarchy: per-core L1/L2 plus one shared L3.
#[derive(Debug)]
pub struct CacheHierarchy {
    line_bytes: usize,
    l1_latency: u32,
    l2_latency: u32,
    l3_latency: u32,
    invalidate_cycles: u32,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    /// Bit `c` set means core `c`'s private caches hold the line
    /// (invariant: mirrors `l2[c].contains(line)`).
    sharers: HashMap<Addr, u16, LineHashBuilder>,
    attrib: Option<CacheAttrib>,
}

impl CacheHierarchy {
    /// Builds the hierarchy for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is 0 or exceeds 16 (the sharer mask width), or if
    /// any cache geometry is invalid.
    pub fn new(config: &CacheConfig, cores: usize) -> Self {
        assert!((1..=16).contains(&cores), "1..=16 cores supported");
        if let Err(e) = config.validate() {
            panic!("invalid CacheConfig: {e}");
        }
        let l2: Vec<Cache> = (0..cores)
            .map(|_| Cache::new(&config.l2, config.line_bytes))
            .collect();
        // Sharer entries mirror L2 residency, so the map never holds more
        // than the combined private-L2 line capacity: pre-sizing to that
        // bound keeps the steady-state hot loop free of rehashing.
        let sharer_bound = cores * l2[0].capacity_lines();
        CacheHierarchy {
            line_bytes: config.line_bytes,
            l1_latency: config.l1.latency_cycles,
            l2_latency: config.l2.latency_cycles,
            l3_latency: config.l3.latency_cycles,
            invalidate_cycles: config.invalidate_cycles,
            l1: (0..cores)
                .map(|_| Cache::new(&config.l1, config.line_bytes))
                .collect(),
            l2,
            l3: Cache::new(&config.l3, config.line_bytes),
            sharers: HashMap::with_capacity_and_hasher(sharer_bound, LineHashBuilder),
            attrib: None,
        }
    }

    /// Turns on latency attribution. Recording only observes the latency
    /// the hierarchy already computed, so timing is unchanged.
    pub fn enable_attribution(&mut self) {
        self.attrib = Some(CacheAttrib::default());
    }

    /// The attribution ledger, if enabled.
    pub fn attrib(&self) -> Option<&CacheAttrib> {
        self.attrib.as_ref()
    }

    /// Number of cores this hierarchy serves.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Performs a cacheable access by `core`. Fills on miss (write-allocate,
    /// write-back). `write` requests exclusive ownership.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: Addr, write: bool) -> AccessOutcome {
        let mut writebacks = Vec::new();
        let result = self.access_into(core, addr, write, &mut writebacks);
        AccessOutcome {
            latency: result.latency,
            level: result.level,
            writebacks,
            invalidated_sharers: result.invalidated_sharers,
        }
    }

    /// [`access`](Self::access) writing evicted dirty lines into a
    /// caller-owned buffer (appended, not cleared) instead of allocating a
    /// fresh `Vec` per access — the simulator hot path reuses one buffer
    /// across every access of a run.
    #[inline]
    pub fn access_into(
        &mut self,
        core: usize,
        addr: Addr,
        write: bool,
        writebacks: &mut Vec<Addr>,
    ) -> AccessResult {
        let line = line_of(addr, self.line_bytes);
        let mut invalidated = 0u32;

        // Exclusivity: strip remote copies before a write completes.
        if write {
            invalidated = self.strip_remote_sharers(core, line, writebacks);
        }

        let l1_hit = if write {
            self.l1[core].lookup_dirty(line)
        } else {
            self.l1[core].lookup(line)
        };
        if l1_hit {
            return self.finish_access(ServiceLevel::L1, self.l1_latency, invalidated);
        }
        if self.l2[core].lookup(line) {
            self.fill_l1(core, line, write);
            let base = self.l1_latency + self.l2_latency;
            return self.finish_access(ServiceLevel::L2, base, invalidated);
        }
        if self.l3.lookup(line) {
            self.fill_private(core, line, write, writebacks);
            let base = self.check_path_latency();
            return self.finish_access(ServiceLevel::L3, base, invalidated);
        }
        // Full miss: fill L3 then the private levels.
        self.fill_l3(line, writebacks);
        self.fill_private(core, line, write, writebacks);
        let base = self.check_path_latency();
        self.finish_access(ServiceLevel::Memory, base, invalidated)
    }

    /// Checks the hierarchy *without filling on miss* — the U-PEI offload
    /// path: the request probes the caches (paying the checking latency and
    /// updating LRU/counters) but a missing line is serviced in memory and
    /// never brought in.
    pub fn probe_no_fill(&mut self, core: usize, addr: Addr, write: bool) -> AccessOutcome {
        let line = line_of(addr, self.line_bytes);
        let mut writebacks = Vec::new();
        let mut invalidated = 0;
        if write {
            invalidated = self.strip_remote_sharers(core, line, &mut writebacks);
        }
        let (level, latency) = if self.l1[core].lookup(line) {
            if write {
                self.l1[core].mark_dirty(line);
            }
            (ServiceLevel::L1, self.l1_latency)
        } else if self.l2[core].lookup(line) {
            if write {
                self.l2[core].mark_dirty(line);
            }
            (ServiceLevel::L2, self.l1_latency + self.l2_latency)
        } else if self.l3.lookup(line) {
            if write {
                self.l3.mark_dirty(line);
            }
            (ServiceLevel::L3, self.check_path_latency())
        } else {
            (ServiceLevel::Memory, self.check_path_latency())
        };
        let result = self.finish_access(level, latency, invalidated);
        AccessOutcome {
            latency: result.latency,
            level: result.level,
            writebacks,
            invalidated_sharers: result.invalidated_sharers,
        }
    }

    /// Common tail of every access: attributes the latency (when enabled)
    /// and assembles the result. `latency = base + inval_cost` exactly as
    /// the per-level return sites previously computed it.
    #[inline]
    fn finish_access(
        &mut self,
        level: ServiceLevel,
        base_latency: u32,
        invalidated: u32,
    ) -> AccessResult {
        let inval = self.inval_cost(invalidated);
        if let Some(a) = &mut self.attrib {
            a.note(level, base_latency as f64, inval as f64);
        }
        AccessResult {
            latency: base_latency + inval,
            level,
            invalidated_sharers: invalidated,
        }
    }

    /// Whether `addr` would hit somewhere, without any side effects.
    pub fn peek(&self, core: usize, addr: Addr) -> Option<ServiceLevel> {
        let line = line_of(addr, self.line_bytes);
        if self.l1[core].contains(line) {
            Some(ServiceLevel::L1)
        } else if self.l2[core].contains(line) {
            Some(ServiceLevel::L2)
        } else if self.l3.contains(line) {
            Some(ServiceLevel::L3)
        } else {
            None
        }
    }

    /// Aggregate `(l1, l2, l3)` hit/miss counts across cores.
    pub fn level_counts(&self) -> (LevelCounts, LevelCounts, LevelCounts) {
        let mut l1 = LevelCounts::default();
        let mut l2 = LevelCounts::default();
        for c in &self.l1 {
            let (h, m) = c.hit_miss();
            l1.hits += h;
            l1.misses += m;
        }
        for c in &self.l2 {
            let (h, m) = c.hit_miss();
            l2.hits += h;
            l2.misses += m;
        }
        let (h, m) = self.l3.hit_miss();
        (l1, l2, LevelCounts { hits: h, misses: m })
    }

    /// Reports aggregate per-level counters plus shared-L3 occupancy under
    /// the `mem.l1` / `mem.l2` / `mem.l3` namespaces.
    pub fn report_telemetry(&self, sink: &mut dyn Telemetry) {
        let (l1, l2, l3) = self.level_counts();
        l1.report_telemetry("mem.l1", sink);
        l2.report_telemetry("mem.l2", sink);
        l3.report_telemetry("mem.l3", sink);
        // Adds resident/capacity on top of the L3 hits/misses already
        // recorded (same keys, same values — the registry dedups).
        self.l3.report_telemetry("mem.l3", sink);
    }

    /// Clears all hit/miss counters.
    pub fn reset_counters(&mut self) {
        for c in &mut self.l1 {
            c.reset_counters();
        }
        for c in &mut self.l2 {
            c.reset_counters();
        }
        self.l3.reset_counters();
    }

    /// Latency of checking all three levels (an L3 hit or full miss pays
    /// the whole path).
    pub fn check_path_latency(&self) -> u32 {
        self.l1_latency + self.l2_latency + self.l3_latency
    }

    /// Latency of the L3 lookup alone.
    pub fn l3_latency(&self) -> u32 {
        self.l3_latency
    }

    fn inval_cost(&self, invalidated: u32) -> u32 {
        if invalidated > 0 {
            self.invalidate_cycles
        } else {
            0
        }
    }

    /// Invalidates every remote private copy of `line`; dirty remote data
    /// merges into the L3 copy (or memory if L3 no longer holds it).
    #[inline]
    fn strip_remote_sharers(&mut self, core: usize, line: Addr, writebacks: &mut Vec<Addr>) -> u32 {
        let Some(mask) = self.sharers.get(&line).copied() else {
            return 0;
        };
        let remote = mask & !(1u16 << core);
        if remote == 0 {
            return 0;
        }
        let mut count = 0;
        for c in 0..self.l1.len() {
            if remote & (1 << c) != 0 {
                let d1 = self.l1[c].invalidate(line).unwrap_or(false);
                let d2 = self.l2[c].invalidate(line).unwrap_or(false);
                if (d1 || d2) && !self.l3.mark_dirty(line) {
                    writebacks.push(line);
                }
                count += 1;
            }
        }
        let new_mask = mask & (1u16 << core);
        if new_mask == 0 {
            self.sharers.remove(&line);
        } else {
            self.sharers.insert(line, new_mask);
        }
        count
    }

    /// Fills `line` into the core's L1 (it is already in L2/L3).
    fn fill_l1(&mut self, core: usize, line: Addr, write: bool) {
        if let Some(victim) = self.l1[core].insert(line) {
            if victim.dirty {
                // Inclusion guarantees the victim is still in L2.
                self.l2[core].mark_dirty(victim.addr);
            }
        }
        if write {
            self.l1[core].mark_dirty(line);
        }
    }

    /// Fills `line` into L2 and L1 (already resident in L3).
    fn fill_private(&mut self, core: usize, line: Addr, write: bool, writebacks: &mut Vec<Addr>) {
        if let Some(victim) = self.l2[core].insert(line) {
            // Inclusion: purge the victim from this core's L1.
            let l1_dirty = self.l1[core].invalidate(victim.addr).unwrap_or(false);
            if (victim.dirty || l1_dirty) && !self.l3.mark_dirty(victim.addr) {
                writebacks.push(victim.addr);
            }
            self.remove_sharer(victim.addr, core);
        }
        self.add_sharer(line, core);
        self.fill_l1(core, line, write);
    }

    /// Fills `line` into the shared L3, back-invalidating private copies of
    /// the victim (inclusive hierarchy).
    fn fill_l3(&mut self, line: Addr, writebacks: &mut Vec<Addr>) {
        if let Some(victim) = self.l3.insert(line) {
            let mut dirty = victim.dirty;
            if let Some(mask) = self.sharers.remove(&victim.addr) {
                for c in 0..self.l1.len() {
                    if mask & (1 << c) != 0 {
                        let d1 = self.l1[c].invalidate(victim.addr).unwrap_or(false);
                        let d2 = self.l2[c].invalidate(victim.addr).unwrap_or(false);
                        dirty |= d1 || d2;
                    }
                }
            }
            if dirty {
                writebacks.push(victim.addr);
            }
        }
    }

    fn add_sharer(&mut self, line: Addr, core: usize) {
        *self.sharers.entry(line).or_insert(0) |= 1 << core;
    }

    fn remove_sharer(&mut self, line: Addr, core: usize) {
        if let Some(mask) = self.sharers.get_mut(&line) {
            *mask &= !(1u16 << core);
            if *mask == 0 {
                self.sharers.remove(&line);
            }
        }
    }

    /// Checks the sharer-map/L2 invariant; test helper.
    #[doc(hidden)]
    pub fn debug_check_sharer_invariant(&self, line: Addr) -> bool {
        let mask = self.sharers.get(&line).copied().unwrap_or(0);
        (0..self.l2.len()).all(|c| {
            let in_l2 = self.l2[c].contains(line);
            let bit = mask & (1 << c) != 0;
            in_l2 == bit
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(&SimConfig::test_tiny().cache, 2)
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut h = hierarchy();
        let a = h.access(0, 0x1000, false);
        assert_eq!(a.level, ServiceLevel::Memory);
        let b = h.access(0, 0x1000, false);
        assert_eq!(b.level, ServiceLevel::L1);
        assert!(b.latency < a.latency);
    }

    #[test]
    fn same_line_different_word_hits() {
        let mut h = hierarchy();
        h.access(0, 0x1000, false);
        let b = h.access(0, 0x1038, false); // same 64-byte line
        assert_eq!(b.level, ServiceLevel::L1);
    }

    #[test]
    fn other_core_hits_in_l3() {
        let mut h = hierarchy();
        h.access(0, 0x2000, false);
        let b = h.access(1, 0x2000, false);
        assert_eq!(b.level, ServiceLevel::L3);
    }

    #[test]
    fn write_invalidates_remote_sharers() {
        let mut h = hierarchy();
        h.access(0, 0x3000, false);
        h.access(1, 0x3000, false);
        let w = h.access(0, 0x3000, true);
        assert_eq!(w.invalidated_sharers, 1);
        // Core 1 lost its private copy: next read refills from L3.
        let r = h.access(1, 0x3000, false);
        assert_eq!(r.level, ServiceLevel::L3);
    }

    #[test]
    fn write_to_private_line_has_no_invalidation() {
        let mut h = hierarchy();
        h.access(0, 0x4000, true);
        let w = h.access(0, 0x4000, true);
        assert_eq!(w.invalidated_sharers, 0);
        assert_eq!(w.level, ServiceLevel::L1);
    }

    #[test]
    fn probe_no_fill_leaves_caches_untouched() {
        let mut h = hierarchy();
        let p = h.probe_no_fill(0, 0x5000, true);
        assert_eq!(p.level, ServiceLevel::Memory);
        assert_eq!(h.peek(0, 0x5000), None);
    }

    #[test]
    fn probe_no_fill_hits_resident_lines() {
        let mut h = hierarchy();
        h.access(0, 0x6000, false);
        let p = h.probe_no_fill(0, 0x6000, false);
        assert_eq!(p.level, ServiceLevel::L1);
    }

    #[test]
    fn dirty_eviction_reaches_memory() {
        let mut h = hierarchy();
        h.access(0, 0, true); // dirty line 0
                              // Evict through capacity pressure: walk far beyond L3 capacity.
        let mut saw_writeback = false;
        for i in 1..2048u64 {
            let out = h.access(0, i * 64, false);
            if out.writebacks.contains(&0) {
                saw_writeback = true;
                break;
            }
        }
        assert!(saw_writeback, "dirty line 0 never written back");
    }

    #[test]
    fn inclusion_l3_eviction_purges_private() {
        let mut h = hierarchy();
        h.access(0, 0, false);
        // Thrash L3 until line 0 is gone from it.
        for i in 1..4096u64 {
            h.access(1, i * 64, false);
            if h.peek(1, 0).is_none() {
                break;
            }
        }
        // Inclusion: core 0 must not still hold it privately.
        assert_eq!(h.peek(0, 0), None);
    }

    #[test]
    fn sharer_invariant_after_traffic() {
        let mut h = hierarchy();
        for i in 0..512u64 {
            h.access((i % 2) as usize, (i * 64) % 8192, i % 3 == 0);
        }
        for line in (0..8192u64).step_by(64) {
            assert!(
                h.debug_check_sharer_invariant(line),
                "sharer invariant broken for line {line:#x}"
            );
        }
    }

    #[test]
    fn level_counts_accumulate() {
        let mut h = hierarchy();
        h.access(0, 0, false);
        h.access(0, 0, false);
        let (l1, _, l3) = h.level_counts();
        assert_eq!(l1.hits, 1);
        assert_eq!(l1.misses, 1);
        assert_eq!(l3.misses, 1);
        assert!(l3.miss_rate() > 0.99);
    }

    #[test]
    fn attribution_totals_match_handed_out_latency() {
        let mut h = hierarchy();
        h.enable_attribution();
        let mut handed_out = 0.0;
        for i in 0..256u64 {
            let core = (i % 2) as usize;
            let out = if i % 5 == 0 {
                h.probe_no_fill(core, (i * 64) % 4096, i % 3 == 0)
            } else {
                h.access(core, (i * 64) % 4096, i % 3 == 0)
            };
            handed_out += out.latency as f64;
        }
        // A guaranteed L1 hit: touch the same line back to back.
        handed_out += h.access(0, 0, false).latency as f64;
        handed_out += h.access(0, 0, false).latency as f64;
        let a = h.attrib().expect("enabled").clone();
        assert!(
            (a.total - handed_out).abs() < 1e-9,
            "{} vs {handed_out}",
            a.total
        );
        assert!((a.components_sum() - a.total).abs() < 1e-9);
        assert!(a.l1 > 0.0 && a.memory > 0.0, "both ends exercised: {a:?}");
    }

    #[test]
    fn attribution_does_not_change_outcomes() {
        let mut plain = hierarchy();
        let mut attributed = hierarchy();
        attributed.enable_attribution();
        for i in 0..256u64 {
            let core = (i % 2) as usize;
            let a = plain.access(core, (i * 64) % 4096, i % 3 == 0);
            let b = attributed.access(core, (i * 64) % 4096, i % 3 == 0);
            assert_eq!(a, b);
        }
        assert!(plain.attrib().is_none(), "off by default");
    }

    #[test]
    fn access_into_matches_access() {
        let mut alloc = hierarchy();
        let mut reuse = hierarchy();
        let mut wbs = Vec::new();
        for i in 0..512u64 {
            let core = (i % 2) as usize;
            let addr = (i * 64) % 16384;
            let write = i % 3 == 0;
            let out = alloc.access(core, addr, write);
            wbs.clear();
            let res = reuse.access_into(core, addr, write, &mut wbs);
            assert_eq!(out.latency, res.latency);
            assert_eq!(out.level, res.level);
            assert_eq!(out.invalidated_sharers, res.invalidated_sharers);
            assert_eq!(out.writebacks, wbs);
        }
    }

    #[test]
    fn miss_rate_of_empty_counts_is_zero() {
        let h = hierarchy();
        let (l1, _, _) = h.level_counts();
        assert_eq!(l1.miss_rate(), 0.0);
    }

    #[test]
    fn hierarchy_telemetry_matches_level_counts() {
        let mut h = hierarchy();
        h.access(0, 0, false);
        h.access(0, 0, false);
        h.access(1, 0, false);
        let (l1, l2, l3) = h.level_counts();
        let mut reg = crate::telemetry::CounterRegistry::default();
        h.report_telemetry(&mut reg);
        assert_eq!(reg.get("mem.l1.hits"), Some(l1.hits as f64));
        assert_eq!(reg.get("mem.l1.misses"), Some(l1.misses as f64));
        assert_eq!(reg.get("mem.l2.misses"), Some(l2.misses as f64));
        assert_eq!(reg.get("mem.l3.hits"), Some(l3.hits as f64));
        assert!(reg.get("mem.l3.resident_lines").unwrap() >= 1.0);
        assert!(reg.get("mem.l3.capacity_lines").unwrap() > 0.0);
    }
}
