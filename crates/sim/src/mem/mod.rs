//! Memory subsystem: address space layout and the cache hierarchy.

pub mod addr;
pub mod cache;
pub mod hierarchy;

pub use addr::{Addr, Region};
pub use cache::{Cache, EvictedLine};
pub use hierarchy::{AccessOutcome, CacheHierarchy, ServiceLevel};
