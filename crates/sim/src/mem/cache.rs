//! Set-associative cache with true-LRU replacement.
//!
//! One instance models one level for one owner (a private L1/L2, or the
//! shared L3). Lines are identified by their aligned line address; the
//! surrounding [`super::hierarchy::CacheHierarchy`] enforces inclusion and
//! coherence between instances.

use super::addr::Addr;
use crate::config::CacheLevelConfig;
use crate::telemetry::Telemetry;

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Aligned address of the victim line.
    pub addr: Addr,
    /// Whether the victim held modified data (needs a writeback).
    pub dirty: bool,
}

/// One set-associative cache array.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_bytes: usize,
    /// Shift/mask set indexing when `line_bytes` and `sets` are both
    /// powers of two (every shipped geometry is); `set_of` falls back to
    /// div/mod otherwise. Two integer divisions per lookup are visible in
    /// the simulator's hot-loop profile.
    pow2: bool,
    line_shift: u32,
    set_mask: u64,
    /// `sets * ways` entries; `u64::MAX` marks an invalid way.
    tags: Vec<Addr>,
    dirty: Vec<bool>,
    /// Last-use stamp per way for LRU.
    stamp: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

const INVALID: Addr = Addr::MAX;

impl Cache {
    /// Builds a cache from a level configuration and line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly (see
    /// [`CacheLevelConfig::sets`]).
    pub fn new(config: &CacheLevelConfig, line_bytes: usize) -> Self {
        let sets = config.sets(line_bytes);
        let ways = config.ways;
        Cache {
            sets,
            ways,
            line_bytes,
            pow2: line_bytes.is_power_of_two() && sets.is_power_of_two(),
            line_shift: line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            tags: vec![INVALID; sets * ways],
            dirty: vec![false; sets * ways],
            stamp: vec![0; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: Addr) -> usize {
        if self.pow2 {
            ((line >> self.line_shift) & self.set_mask) as usize
        } else {
            ((line / self.line_bytes as u64) % self.sets as u64) as usize
        }
    }

    #[inline]
    fn way_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up `line`; on hit, refreshes LRU and returns `true`.
    #[inline]
    pub fn lookup(&mut self, line: Addr) -> bool {
        self.lookup_impl(line, false)
    }

    /// [`lookup`](Self::lookup) that also marks the line dirty on a hit:
    /// the write path's hit check and dirty update in one set scan,
    /// state-identical to `lookup` followed by `mark_dirty`.
    #[inline]
    pub fn lookup_dirty(&mut self, line: Addr) -> bool {
        self.lookup_impl(line, true)
    }

    #[inline]
    fn lookup_impl(&mut self, line: Addr, set_dirty: bool) -> bool {
        let base = self.set_of(line) * self.ways;
        self.tick += 1;
        let tags = &self.tags[base..base + self.ways];
        if let Some(w) = tags.iter().position(|&t| t == line) {
            self.stamp[base + w] = self.tick;
            if set_dirty {
                self.dirty[base + w] = true;
            }
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        false
    }

    /// Looks up without disturbing LRU or hit/miss counters.
    pub fn contains(&self, line: Addr) -> bool {
        let set = self.set_of(line);
        self.way_range(set).any(|i| self.tags[i] == line)
    }

    /// Inserts `line` (must not already be present), evicting the LRU way if
    /// the set is full. Returns the victim, if any.
    pub fn insert(&mut self, line: Addr) -> Option<EvictedLine> {
        debug_assert!(!self.contains(line), "insert of resident line");
        let set = self.set_of(line);
        self.tick += 1;
        let mut victim = None; // (index, stamp)
        for i in self.way_range(set) {
            if self.tags[i] == INVALID {
                self.tags[i] = line;
                self.dirty[i] = false;
                self.stamp[i] = self.tick;
                return None;
            }
            match victim {
                None => victim = Some((i, self.stamp[i])),
                Some((_, s)) if self.stamp[i] < s => victim = Some((i, self.stamp[i])),
                _ => {}
            }
        }
        let (i, _) = victim.expect("set has at least one way");
        let evicted = EvictedLine {
            addr: self.tags[i],
            dirty: self.dirty[i],
        };
        self.tags[i] = line;
        self.dirty[i] = false;
        self.stamp[i] = self.tick;
        Some(evicted)
    }

    /// Marks `line` dirty if present; returns whether it was present.
    pub fn mark_dirty(&mut self, line: Addr) -> bool {
        let set = self.set_of(line);
        for i in self.way_range(set) {
            if self.tags[i] == line {
                self.dirty[i] = true;
                return true;
            }
        }
        false
    }

    /// Removes `line`; returns whether it was present and dirty.
    pub fn invalidate(&mut self, line: Addr) -> Option<bool> {
        let set = self.set_of(line);
        for i in self.way_range(set) {
            if self.tags[i] == line {
                let was_dirty = self.dirty[i];
                self.tags[i] = INVALID;
                self.dirty[i] = false;
                return Some(was_dirty);
            }
        }
        None
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID).count()
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// `(hits, misses)` since construction.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Clears the hit/miss counters (e.g. after warmup).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Reports hit/miss counters and occupancy under `prefix` (e.g.
    /// `mem.l3` → `mem.l3.hits`, `mem.l3.resident_lines`, ...).
    pub fn report_telemetry(&self, prefix: &str, sink: &mut dyn Telemetry) {
        sink.record(&format!("{prefix}.hits"), self.hits as f64);
        sink.record(&format!("{prefix}.misses"), self.misses as f64);
        sink.record(
            &format!("{prefix}.resident_lines"),
            self.resident_lines() as f64,
        );
        sink.record(
            &format!("{prefix}.capacity_lines"),
            self.capacity_lines() as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways of 64-byte lines = 256 bytes.
        Cache::new(
            &CacheLevelConfig {
                capacity_bytes: 256,
                ways: 2,
                latency_cycles: 1,
            },
            64,
        )
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.lookup(0));
        c.insert(0);
        assert!(c.lookup(0));
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Lines 0, 128, 256 all map to set 0 (line/64 % 2).
        c.insert(0);
        c.insert(128);
        c.lookup(0); // 0 is now MRU
        let victim = c.insert(256).expect("set full");
        assert_eq!(victim.addr, 128);
        assert!(c.contains(0));
        assert!(c.contains(256));
    }

    #[test]
    fn dirty_propagates_to_eviction() {
        let mut c = tiny();
        c.insert(0);
        assert!(c.mark_dirty(0));
        c.insert(128);
        let victim = c.insert(256).expect("evicts");
        assert_eq!(victim.addr, 0);
        assert!(victim.dirty);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.insert(64);
        c.mark_dirty(64);
        assert_eq!(c.invalidate(64), Some(true));
        assert_eq!(c.invalidate(64), None);
        assert!(!c.contains(64));
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = tiny();
        for i in 0..100u64 {
            if !c.contains(i * 64) {
                c.insert(i * 64);
            }
            assert!(c.resident_lines() <= c.capacity_lines());
        }
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        c.insert(0); // set 0
        c.insert(64); // set 1
        c.insert(128); // set 0
        assert!(c.contains(64));
        assert_eq!(c.resident_lines(), 3);
    }

    #[test]
    fn mark_dirty_on_absent_line_is_false() {
        let mut c = tiny();
        assert!(!c.mark_dirty(0));
    }

    #[test]
    fn lookup_dirty_equals_lookup_then_mark() {
        let mut merged = tiny();
        let mut split = tiny();
        merged.insert(0);
        split.insert(0);
        assert!(merged.lookup_dirty(0));
        assert!(split.lookup(0));
        split.mark_dirty(0);
        assert_eq!(merged.hit_miss(), split.hit_miss());
        assert!(!merged.lookup_dirty(64), "miss counts as a miss");
        // Dirtiness and LRU agree: both evict the same dirty victim.
        merged.insert(128);
        split.insert(128);
        assert_eq!(merged.insert(256), split.insert(256));
    }

    #[test]
    fn reset_counters_zeroes() {
        let mut c = tiny();
        c.lookup(0);
        c.reset_counters();
        assert_eq!(c.hit_miss(), (0, 0));
    }

    #[test]
    fn telemetry_reports_counters_and_occupancy() {
        let mut c = tiny();
        c.insert(0);
        c.lookup(0);
        c.lookup(64);
        let mut reg = crate::telemetry::CounterRegistry::default();
        c.report_telemetry("mem.l3", &mut reg);
        assert_eq!(reg.get("mem.l3.hits"), Some(1.0));
        assert_eq!(reg.get("mem.l3.misses"), Some(1.0));
        assert_eq!(reg.get("mem.l3.resident_lines"), Some(1.0));
        assert_eq!(reg.get("mem.l3.capacity_lines"), Some(4.0));
    }
}
