//! Simulated physical address space.
//!
//! The graph framework places each data component of Section II-C in its own
//! region so the simulator (and the POU) can classify accesses by address,
//! exactly how GraphPIM's PIM memory region works:
//!
//! * **Meta** — task queues, frontiers, local variables (cache friendly);
//! * **Structure** — CSR offsets/adjacency (streamed, good spatial locality);
//! * **Property** — per-vertex property arrays (irregular; the PMR when
//!   GraphPIM mode is on).

use serde::{Deserialize, Serialize};

/// A simulated physical address.
pub type Addr = u64;

/// Which data component an address belongs to (Section II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Local variables, frontier queues, per-thread state.
    Meta,
    /// Graph structure: CSR offsets and adjacency arrays.
    Structure,
    /// Graph property arrays — the PIM memory region candidate.
    Property,
}

impl Region {
    /// All regions.
    pub const ALL: [Region; 3] = [Region::Meta, Region::Structure, Region::Property];

    const SHIFT: u32 = 44;

    /// Base address of the region (regions are 16 TiB apart — effectively
    /// disjoint for any workload in this repository).
    pub const fn base(self) -> Addr {
        match self {
            Region::Meta => 0,
            Region::Structure => 1 << Self::SHIFT,
            Region::Property => 2 << Self::SHIFT,
        }
    }

    /// Builds an address at `offset` within the region.
    pub const fn addr(self, offset: u64) -> Addr {
        self.base() | (offset & ((1 << Self::SHIFT) - 1))
    }

    /// Classifies an address.
    pub fn of(addr: Addr) -> Region {
        match addr >> Self::SHIFT {
            0 => Region::Meta,
            1 => Region::Structure,
            _ => Region::Property,
        }
    }
}

/// The aligned cache-line address containing `addr`.
#[inline]
pub fn line_of(addr: Addr, line_bytes: usize) -> Addr {
    addr & !(line_bytes as u64 - 1)
}

/// Maps a line address to `(vault, bank)` for the HMC cube.
///
/// Consecutive `interleave`-byte blocks round-robin across vaults (the HMC
/// "low interleave" default), and blocks within a vault spread across banks.
#[inline]
pub fn vault_bank_of(
    addr: Addr,
    vaults: usize,
    banks_per_vault: usize,
    interleave: u64,
) -> (usize, usize) {
    let block = addr / interleave;
    let vault = (block % vaults as u64) as usize;
    let bank = ((block / vaults as u64) % banks_per_vault as u64) as usize;
    (vault, bank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_round_trip() {
        for region in Region::ALL {
            let a = region.addr(0x1234);
            assert_eq!(Region::of(a), region);
            assert_eq!(a & 0xFFFF, 0x1234);
        }
    }

    #[test]
    fn regions_are_disjoint() {
        assert_ne!(Region::Meta.base(), Region::Structure.base());
        assert_ne!(Region::Structure.base(), Region::Property.base());
    }

    #[test]
    fn line_alignment() {
        assert_eq!(line_of(0x12345, 64), 0x12340);
        assert_eq!(line_of(0x12340, 64), 0x12340);
        assert_eq!(line_of(63, 64), 0);
        assert_eq!(line_of(64, 64), 64);
    }

    #[test]
    fn vault_mapping_round_robins() {
        let (v0, _) = vault_bank_of(0, 32, 16, 256);
        let (v1, _) = vault_bank_of(256, 32, 16, 256);
        let (v32, b32) = vault_bank_of(256 * 32, 32, 16, 256);
        assert_eq!(v0, 0);
        assert_eq!(v1, 1);
        assert_eq!(v32, 0);
        assert_eq!(b32, 1); // wrapped to next bank
    }

    #[test]
    fn vault_bank_in_range() {
        for addr in (0..100_000u64).step_by(97) {
            let (v, b) = vault_bank_of(addr, 32, 16, 256);
            assert!(v < 32);
            assert!(b < 16);
        }
    }

    #[test]
    fn consecutive_property_words_spread_vaults() {
        // Adjacent 256-byte regions of the property array land in different
        // vaults, so consecutive hot vertices do not serialize on one vault.
        let a = Region::Property.addr(0);
        let b = Region::Property.addr(256);
        let (va, _) = vault_bank_of(a, 32, 16, 256);
        let (vb, _) = vault_bank_of(b, 32, 16, 256);
        assert_ne!(va, vb);
    }
}
