//! Cycle attribution: where did the time go?
//!
//! The paper's evaluation (Figures 10-13) is an *attribution* argument —
//! GraphPIM wins because atomic serialization and cache pollution cycles
//! disappear — so the simulator needs to say not just *how long* a run
//! took but *why*. Each timing component optionally carries an
//! attribution ledger:
//!
//! * [`CoreAttrib`] — every advance of a core's clock, bucketed by cause
//!   (issue bandwidth, frontend stalls, dependence waits, ROB/MSHR
//!   structural stalls, host-atomic serialization, barrier and drain
//!   waits). The buckets telescope: their sum equals the core's final
//!   clock exactly, which the validation layer checks against
//!   [`crate::stats::CycleBreakdown`].
//! * [`CacheAttrib`] — latency of every hierarchy access split by the
//!   level that served it, plus coherence invalidation cost.
//! * [`HmcAttrib`] — each HMC request's latency decomposed into link
//!   flits, vault overhead, bank-queue wait, DRAM service, atomic-FU
//!   busy time, and atomic-FU queue wait.
//!
//! All three follow the Option-gating pattern of the telemetry histograms:
//! recording is a pure observation of already-computed deltas, so timing
//! stays bit-identical whether attribution is on or off.

use crate::telemetry::Telemetry;

/// Where a core's clock advances went, in cycles.
///
/// Every mutation of [`crate::cpu::CoreModel`]'s clock lands in exactly
/// one bucket, so `total()` telescopes to the final core time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreAttrib {
    /// Issue bandwidth: `instructions / width` cycles of useful retirement.
    pub issue: f64,
    /// Frontend fetch/decode stall cycles.
    pub frontend: f64,
    /// Misprediction flush penalties.
    pub bad_speculation: f64,
    /// Waits for a dependent result (pointer chasing, resolve-at-data).
    pub dep_wait: f64,
    /// Stalls with the reorder buffer full.
    pub rob_stall: f64,
    /// Stalls with every MSHR occupied.
    pub mshr_wait: f64,
    /// Host-atomic in-core serialization (store-buffer drain + locked RMW).
    pub atomic_serialize: f64,
    /// Waits at superstep barriers for the slowest participant.
    pub barrier_wait: f64,
    /// Final drain of in-flight work at kernel end.
    pub drain_wait: f64,
}

impl CoreAttrib {
    /// Sum of every bucket; equals the core's final clock by construction.
    pub fn total(&self) -> f64 {
        self.issue
            + self.frontend
            + self.bad_speculation
            + self.dep_wait
            + self.rob_stall
            + self.mshr_wait
            + self.atomic_serialize
            + self.barrier_wait
            + self.drain_wait
    }

    /// Adds every bucket from `other` (aggregating per-core ledgers into a
    /// machine-wide one).
    pub fn accumulate(&mut self, other: &CoreAttrib) {
        self.issue += other.issue;
        self.frontend += other.frontend;
        self.bad_speculation += other.bad_speculation;
        self.dep_wait += other.dep_wait;
        self.rob_stall += other.rob_stall;
        self.mshr_wait += other.mshr_wait;
        self.atomic_serialize += other.atomic_serialize;
        self.barrier_wait += other.barrier_wait;
        self.drain_wait += other.drain_wait;
    }

    /// Reports every bucket under `prefix` (e.g. `attrib.core` →
    /// `attrib.core.issue`, ...).
    pub fn report_telemetry(&self, prefix: &str, sink: &mut dyn Telemetry) {
        sink.record(&format!("{prefix}.issue"), self.issue);
        sink.record(&format!("{prefix}.frontend"), self.frontend);
        sink.record(&format!("{prefix}.bad_speculation"), self.bad_speculation);
        sink.record(&format!("{prefix}.dep_wait"), self.dep_wait);
        sink.record(&format!("{prefix}.rob_stall"), self.rob_stall);
        sink.record(&format!("{prefix}.mshr_wait"), self.mshr_wait);
        sink.record(&format!("{prefix}.atomic_serialize"), self.atomic_serialize);
        sink.record(&format!("{prefix}.barrier_wait"), self.barrier_wait);
        sink.record(&format!("{prefix}.drain_wait"), self.drain_wait);
    }
}

/// Latency attribution for the cache hierarchy, in cycles.
///
/// Each access contributes its base latency to the bucket of the level
/// that served it; coherence invalidation costs are tracked separately
/// (they happen on top of any level).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheAttrib {
    /// Cycles of accesses served by the L1.
    pub l1: f64,
    /// Cycles of accesses served by the L2.
    pub l2: f64,
    /// Cycles of accesses served by the L3.
    pub l3: f64,
    /// Cycles of accesses that missed the whole hierarchy (tag-check path
    /// only; the memory service itself is attributed by [`HmcAttrib`]).
    pub memory: f64,
    /// Cross-core invalidation cost.
    pub invalidate: f64,
    /// Total latency handed out, equal to the component sum.
    pub total: f64,
}

impl CacheAttrib {
    /// Records one access served at `level` with `base` latency plus
    /// `inval` invalidation cost.
    pub fn note(&mut self, level: crate::mem::ServiceLevel, base: f64, inval: f64) {
        use crate::mem::ServiceLevel;
        match level {
            ServiceLevel::L1 => self.l1 += base,
            ServiceLevel::L2 => self.l2 += base,
            ServiceLevel::L3 => self.l3 += base,
            ServiceLevel::Memory => self.memory += base,
        }
        self.invalidate += inval;
        self.total += base + inval;
    }

    /// Sum of the per-level and invalidation buckets.
    pub fn components_sum(&self) -> f64 {
        self.l1 + self.l2 + self.l3 + self.memory + self.invalidate
    }

    /// Reports every bucket under `prefix`.
    pub fn report_telemetry(&self, prefix: &str, sink: &mut dyn Telemetry) {
        sink.record(&format!("{prefix}.l1"), self.l1);
        sink.record(&format!("{prefix}.l2"), self.l2);
        sink.record(&format!("{prefix}.l3"), self.l3);
        sink.record(&format!("{prefix}.memory"), self.memory);
        sink.record(&format!("{prefix}.invalidate"), self.invalidate);
        sink.record(&format!("{prefix}.total"), self.total);
    }
}

/// Latency attribution for HMC requests, in cycles.
///
/// Each serviced request's `response_at - now` decomposes exactly into
/// these buckets (checked by the validation layer).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HmcAttrib {
    /// SerDes link time: request + response flits plus both link latencies.
    pub link: f64,
    /// Fixed vault-controller overhead.
    pub vault_overhead: f64,
    /// Waiting for a busy bank (the per-vault queue).
    pub queue_wait: f64,
    /// DRAM array service (activation / column access / write recovery).
    pub dram: f64,
    /// Atomic functional unit compute time.
    pub fu_busy: f64,
    /// Waiting for a free atomic functional unit.
    pub fu_wait: f64,
    /// Total request latency, equal to the component sum.
    pub total: f64,
}

impl HmcAttrib {
    /// Sum of the component buckets.
    pub fn components_sum(&self) -> f64 {
        self.link + self.vault_overhead + self.queue_wait + self.dram + self.fu_busy + self.fu_wait
    }

    /// Reports every bucket under `prefix`.
    pub fn report_telemetry(&self, prefix: &str, sink: &mut dyn Telemetry) {
        sink.record(&format!("{prefix}.link"), self.link);
        sink.record(&format!("{prefix}.vault_overhead"), self.vault_overhead);
        sink.record(&format!("{prefix}.queue_wait"), self.queue_wait);
        sink.record(&format!("{prefix}.dram"), self.dram);
        sink.record(&format!("{prefix}.fu_busy"), self.fu_busy);
        sink.record(&format!("{prefix}.fu_wait"), self.fu_wait);
        sink.record(&format!("{prefix}.total"), self.total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::ServiceLevel;
    use crate::telemetry::CounterRegistry;

    #[test]
    fn core_attrib_total_and_accumulate() {
        let a = CoreAttrib {
            issue: 1.0,
            frontend: 2.0,
            bad_speculation: 3.0,
            dep_wait: 4.0,
            rob_stall: 5.0,
            mshr_wait: 6.0,
            atomic_serialize: 7.0,
            barrier_wait: 8.0,
            drain_wait: 9.0,
        };
        assert!((a.total() - 45.0).abs() < 1e-12);
        let mut b = a.clone();
        b.accumulate(&a);
        assert!((b.total() - 90.0).abs() < 1e-12);

        let mut reg = CounterRegistry::default();
        a.report_telemetry("attrib.core", &mut reg);
        assert_eq!(reg.get("attrib.core.issue"), Some(1.0));
        assert_eq!(reg.get("attrib.core.drain_wait"), Some(9.0));
        assert_eq!(reg.len(), 9);
    }

    #[test]
    fn cache_attrib_note_buckets_by_level() {
        let mut c = CacheAttrib::default();
        c.note(ServiceLevel::L1, 4.0, 0.0);
        c.note(ServiceLevel::L3, 30.0, 8.0);
        c.note(ServiceLevel::Memory, 42.0, 0.0);
        assert_eq!(c.l1, 4.0);
        assert_eq!(c.l3, 30.0);
        assert_eq!(c.memory, 42.0);
        assert_eq!(c.invalidate, 8.0);
        assert!((c.components_sum() - c.total).abs() < 1e-12);
    }

    #[test]
    fn hmc_attrib_components_sum() {
        let h = HmcAttrib {
            link: 10.0,
            vault_overhead: 4.0,
            queue_wait: 2.0,
            dram: 20.0,
            fu_busy: 3.0,
            fu_wait: 1.0,
            total: 40.0,
        };
        assert!((h.components_sum() - h.total).abs() < 1e-12);
        let mut reg = CounterRegistry::default();
        h.report_telemetry("attrib.hmc", &mut reg);
        assert_eq!(reg.get("attrib.hmc.dram"), Some(20.0));
        assert_eq!(reg.len(), 7);
    }
}
