#![warn(missing_docs)]

//! Timing substrate for the GraphPIM reproduction.
//!
//! This crate implements, from scratch, the architectural components the
//! paper obtained from SST + MacSim + VaultSim/DRAMSim2:
//!
//! * [`cpu`] — an interval-based approximation of a 4-issue out-of-order
//!   core (ROB occupancy, MSHR-bounded memory-level parallelism, host
//!   atomics with fixed in-core serialization plus an overlappable data
//!   path, cycle attribution for the paper's breakdown figures).
//! * [`mem`] — a three-level MESI-lite cache hierarchy (32 KB L1 / 256 KB
//!   L2 private, 16 MB shared L3, 64 B lines, inclusive) with uncacheable
//!   bypass support for the PIM memory region.
//! * [`hmc`] — an HMC 2.0 cube: 32 vaults × 16 banks with Table IV timing,
//!   per-vault atomic functional units with bank locking, FLIT-accurate
//!   link accounting per Table V, and the full HMC 2.0 atomic command set
//!   of Table I (plus the paper's proposed FP extension).
//! * [`trace`] — the instruction-level trace format the graph framework
//!   emits and the core model consumes.
//! * [`telemetry`] — a pull-based counter/histogram layer every component
//!   reports into (off by default, observation-only so it cannot perturb
//!   timing).
//! * [`attrib`] — optional cycle-attribution ledgers (core stall causes,
//!   per-cache-level latency, HMC request decomposition) that explain
//!   *where* a run's cycles went; Option-gated so timing stays
//!   bit-identical when off.
//! * [`validate`] — typed configuration validation ([`validate::ConfigError`])
//!   run by every constructor, plus the `GRAPHPIM_VALIDATE` gate the
//!   run-invariant checks upstream consult.
//! * [`backend`] — the pluggable [`backend::MemoryBackend`] seam the
//!   system simulator drives, with the paper's single-cube backend plus
//!   multi-cube HMC chain and UPMEM-style DPU design points, and a
//!   conformance suite any backend must pass.
//!
//! Times are modeled in *CPU cycles* at the configured clock (default 2 GHz,
//! Table IV) and carried as `f64` so sub-cycle issue bandwidth accumulates
//! exactly.
//!
//! # Example
//!
//! ```
//! use graphpim_sim::config::SimConfig;
//! use graphpim_sim::hmc::HmcCube;
//!
//! let config = SimConfig::hpca_default();
//! let cube = HmcCube::new(&config.hmc, config.core.clock_ghz);
//! assert_eq!(config.hmc.vaults, 32);
//! assert_eq!(cube.vault_count(), 32);
//! ```

pub mod attrib;
pub mod backend;
pub mod config;
pub mod cpu;
pub mod hmc;
pub mod mem;
pub mod stats;
pub mod telemetry;
pub mod trace;
pub mod validate;

/// Simulation time in CPU cycles.
///
/// `f64` so that 4-wide issue (0.25 cycles per instruction) accumulates
/// without rounding drift; all comparisons in the models are monotone
/// max/min operations, which are exact in floating point.
pub type Cycle = f64;
