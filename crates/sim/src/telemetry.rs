//! Unified simulation telemetry: a sink trait, a namespaced counter
//! registry, and power-of-two histograms.
//!
//! Every model component exposes a `report_telemetry` method that pushes
//! its counters into a [`Telemetry`] sink under dotted
//! `component.counter` keys (`core.instructions`, `mem.l3.misses`,
//! `hmc.vault07.queue_wait.p99`, ...). Reporting is *pull-based*: nothing
//! is recorded while the models advance, so the layer costs nothing
//! unless a driver asks for a snapshot — and because sinks only observe
//! values the models already compute, enabling telemetry can never
//! perturb timing.
//!
//! [`NullSink`] is the zero-cost default; [`CounterRegistry`] is the
//! collecting sink the trace exporter snapshots per superstep.

/// A sink for namespaced counter values.
///
/// Keys are dotted `component.counter` paths; values are `f64` so one
/// channel carries both event counts and cycle totals (counts above
/// 2^53 would round, which no realistic run approaches).
pub trait Telemetry {
    /// Records `value` for `key`, overwriting any earlier value.
    fn record(&mut self, key: &str, value: f64);

    /// Whether recorded values are observed at all. Lets callers skip
    /// building expensive keys for a [`NullSink`].
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The default sink: drops everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl Telemetry for NullSink {
    fn record(&mut self, _key: &str, _value: f64) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// A collecting sink: an insertion-ordered registry of counter values.
///
/// Insertion order is preserved so snapshots serialize deterministically;
/// re-recording a key updates it in place. A side index maps keys to
/// their slot so `record`/`get` are O(1) amortized — a full system
/// snapshot carries hundreds of `hmc.vaultNN.*` keys, and the previous
/// linear probe made every snapshot O(n²).
#[derive(Debug, Clone, Default)]
pub struct CounterRegistry {
    entries: Vec<(String, f64)>,
    index: std::collections::HashMap<String, usize>,
}

impl PartialEq for CounterRegistry {
    /// Equality is over the ordered entries; the index is derived state.
    fn eq(&self, other: &CounterRegistry) -> bool {
        self.entries == other.entries
    }
}

impl CounterRegistry {
    /// Records `value` for `key` (same as the trait method, without
    /// needing the trait in scope).
    pub fn record(&mut self, key: &str, value: f64) {
        match self.index.get(key) {
            Some(&slot) => self.entries[slot].1 = value,
            None => {
                self.index.insert(key.to_string(), self.entries.len());
                self.entries.push((key.to_string(), value));
            }
        }
    }

    /// The value recorded for `key`, if any.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.index.get(key).map(|&slot| self.entries[slot].1)
    }

    /// All `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Entries whose key starts with `prefix`, in insertion order.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, f64)> {
        self.iter().filter(move |(k, _)| k.starts_with(prefix))
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Telemetry for CounterRegistry {
    fn record(&mut self, key: &str, value: f64) {
        CounterRegistry::record(self, key, value);
    }
}

/// A histogram over non-negative samples with power-of-two bucket bounds.
///
/// Bucket `0` covers `[0, 1)`, bucket `i` covers `[2^(i-1), 2^i)`, and
/// the last bucket is unbounded. Cheap enough to sit on the simulation
/// hot path behind an `Option`, exact enough for queue-wait and
/// occupancy distributions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
}

impl Histogram {
    /// A histogram with `buckets` bins (the last one unbounded).
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize) -> Histogram {
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            counts: vec![0; buckets],
            total: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Records one sample. Negative and non-finite values clamp to 0.
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        let mut bucket = 0usize;
        let mut bound = 1.0f64;
        while bucket + 1 < self.counts.len() && v >= bound {
            bucket += 1;
            bound *= 2.0;
        }
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Per-bucket sample counts.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Exclusive upper bound of bucket `i` (the last bucket reports the
    /// maximum observed sample).
    pub fn bucket_bound(&self, i: usize) -> f64 {
        if i + 1 >= self.counts.len() {
            self.max
        } else if i == 0 {
            1.0
        } else {
            2.0f64.powi(i as i32)
        }
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (`p` in `[0, 1]`), or 0 with no samples.
    ///
    /// Every input yields a defined value: `p` outside `[0, 1]` clamps
    /// (so a caller passing percent units degrades to the min/max bucket
    /// rather than garbage), `p <= 0` reports the first occupied bucket,
    /// `p >= 1` the last, and a NaN `p` is read as 1 — previously the
    /// NaN→integer cast silently returned the *minimum* bucket, the worst
    /// possible misreading of an undefined quantile.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let p = if p.is_nan() { 1.0 } else { p.clamp(0.0, 1.0) };
        let target = ((p * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bucket_bound(i);
            }
        }
        self.max
    }

    /// Folds `other` into `self`, bucket by bucket.
    ///
    /// Both histograms must share the same bucket geometry (same
    /// `new(buckets)` count) — per-vault queue-wait and FU-busy
    /// histograms all do, so a cube-level summary is a plain fold.
    ///
    /// # Panics
    ///
    /// Panics if the bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge histograms with different bucket geometries"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Reports summary statistics under `prefix` (`prefix.count`,
    /// `.mean`, `.max`, `.p50`, `.p99`).
    pub fn report_telemetry(&self, prefix: &str, sink: &mut dyn Telemetry) {
        sink.record(&format!("{prefix}.count"), self.total as f64);
        sink.record(&format!("{prefix}.mean"), self.mean());
        sink.record(&format!("{prefix}.max"), self.max);
        sink.record(&format!("{prefix}.p50"), self.percentile(0.50));
        sink.record(&format!("{prefix}.p99"), self.percentile(0.99));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let mut sink = NullSink;
        sink.record("x", 1.0);
        assert!(!sink.is_enabled());
    }

    #[test]
    fn registry_records_and_overwrites() {
        let mut reg = CounterRegistry::default();
        reg.record("a.x", 1.0);
        reg.record("a.y", 2.0);
        reg.record("a.x", 3.0);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get("a.x"), Some(3.0));
        assert_eq!(reg.get("a.z"), None);
        // Insertion order preserved across the overwrite.
        let keys: Vec<&str> = reg.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a.x", "a.y"]);
    }

    #[test]
    fn registry_prefix_filter() {
        let mut reg = CounterRegistry::default();
        reg.record("core.instructions", 10.0);
        reg.record("mem.l1.hits", 5.0);
        reg.record("core.branches", 2.0);
        let core: Vec<&str> = reg.with_prefix("core.").map(|(k, _)| k).collect();
        assert_eq!(core, ["core.instructions", "core.branches"]);
    }

    #[test]
    fn registry_as_trait_object() {
        let mut reg = CounterRegistry::default();
        let sink: &mut dyn Telemetry = &mut reg;
        assert!(sink.is_enabled());
        sink.record("k", 7.0);
        assert_eq!(reg.get("k"), Some(7.0));
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new(4); // [0,1) [1,2) [2,4) [4,inf)
        for v in [0.0, 0.5, 1.0, 3.0, 4.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 100.0);
        assert!((h.mean() - 108.5 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_bad_samples() {
        let mut h = Histogram::new(3);
        h.record(-5.0);
        h.record(f64::NAN);
        assert_eq!(h.bucket_counts(), &[2, 0, 0]);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(8);
        for _ in 0..99 {
            h.record(0.5); // bucket 0, bound 1.0
        }
        h.record(50.0); // bucket 6: [32, 64)
        assert_eq!(h.percentile(0.5), 1.0);
        assert_eq!(h.percentile(0.99), 1.0);
        // The top sample's bucket reports its upper bound.
        assert_eq!(h.percentile(1.0), 64.0);
        assert_eq!(Histogram::new(2).percentile(0.5), 0.0);
    }

    #[test]
    fn histogram_reports_summary_keys() {
        let mut h = Histogram::new(4);
        h.record(2.0);
        let mut reg = CounterRegistry::default();
        h.report_telemetry("hmc.vault00.queue_wait", &mut reg);
        assert_eq!(reg.get("hmc.vault00.queue_wait.count"), Some(1.0));
        assert_eq!(reg.get("hmc.vault00.queue_wait.mean"), Some(2.0));
        assert_eq!(reg.get("hmc.vault00.queue_wait.max"), Some(2.0));
        assert_eq!(reg.get("hmc.vault00.queue_wait.p99"), Some(4.0));
    }

    #[test]
    fn empty_histogram_returns_defined_values() {
        let h = Histogram::new(4);
        for p in [f64::NAN, f64::NEG_INFINITY, -1.0, 0.0, 0.5, 1.0, 99.0] {
            assert_eq!(h.percentile(p), 0.0, "p = {p}");
        }
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn percentile_p_extremes_are_clamped() {
        let mut h = Histogram::new(8);
        for _ in 0..9 {
            h.record(0.5); // bucket 0, bound 1.0
        }
        h.record(50.0); // bucket 6: [32, 64)

        // p <= 0 reports the first occupied bucket; p >= 1 the last.
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(-3.0), 1.0);
        assert_eq!(h.percentile(1.0), 64.0);
        // Percent units (100 for "p100") degrade to the max bucket, not
        // garbage.
        assert_eq!(h.percentile(100.0), 64.0);
    }

    #[test]
    fn percentile_nan_reads_as_max_quantile() {
        let mut h = Histogram::new(8);
        for _ in 0..9 {
            h.record(0.5);
        }
        h.record(50.0);
        // A NaN p used to cast to 0 and silently report the *minimum*
        // bucket; it now reads as p = 1.
        assert_eq!(h.percentile(f64::NAN), h.percentile(1.0));
        assert!(!h.percentile(f64::NAN).is_nan());
    }

    #[test]
    fn single_bucket_histogram_is_defined() {
        let mut h = Histogram::new(1);
        h.record(3.0);
        h.record(7.0);
        // One bucket holds everything; its bound is the observed max.
        assert_eq!(h.bucket_counts(), &[2]);
        for p in [f64::NAN, 0.0, 0.5, 1.0] {
            assert_eq!(h.percentile(p), 7.0, "p = {p}");
            assert!(!h.percentile(p).is_nan());
        }
        assert_eq!(h.mean(), 5.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_needs_buckets() {
        Histogram::new(0);
    }

    #[test]
    fn registry_equality_ignores_index_internals() {
        let mut a = CounterRegistry::default();
        let mut b = CounterRegistry::default();
        a.record("x", 1.0);
        a.record("y", 2.0);
        b.record("x", 0.0);
        b.record("y", 2.0);
        b.record("x", 1.0); // overwrite back to a's value
        assert_eq!(a, b);
        b.record("z", 3.0);
        assert_ne!(a, b);
    }

    #[test]
    fn registry_handles_many_keys() {
        let mut reg = CounterRegistry::default();
        for i in 0..512 {
            reg.record(&format!("hmc.vault{i:02}.queue_wait.count"), i as f64);
        }
        for i in (0..512).rev() {
            reg.record(&format!("hmc.vault{i:02}.queue_wait.count"), 2.0 * i as f64);
        }
        assert_eq!(reg.len(), 512);
        assert_eq!(reg.get("hmc.vault07.queue_wait.count"), Some(14.0));
        // Insertion order survives the reverse-order overwrites.
        let first = reg.iter().next().unwrap();
        assert_eq!(first, ("hmc.vault00.queue_wait.count", 0.0));
    }

    #[test]
    fn histogram_merge_folds_counts_sum_and_max() {
        let mut a = Histogram::new(4);
        let mut b = Histogram::new(4);
        for v in [0.5, 3.0] {
            a.record(v);
        }
        for v in [1.0, 100.0] {
            b.record(v);
        }
        a.merge(&b);
        // Power-of-two buckets: 0.5→[0,1), 1.0→[1,2), 3.0→[2,4), 100→tail.
        assert_eq!(a.bucket_counts(), &[1, 1, 1, 1]);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), 100.0);
        assert!((a.sum() - 104.5).abs() < 1e-12);

        // Merging matches recording the union directly.
        let mut direct = Histogram::new(4);
        for v in [0.5, 3.0, 1.0, 100.0] {
            direct.record(v);
        }
        assert_eq!(a.percentile(0.99), direct.percentile(0.99));
        assert_eq!(a.mean(), direct.mean());
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let mut a = Histogram::new(3);
        a.record(2.0);
        let before = a.clone();
        a.merge(&Histogram::new(3));
        assert_eq!(a, before);
    }

    #[test]
    #[should_panic(expected = "different bucket geometries")]
    fn histogram_merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(3);
        a.merge(&Histogram::new(4));
    }
}
