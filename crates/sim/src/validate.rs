//! Configuration validation: typed [`ConfigError`]s plus the
//! `GRAPHPIM_VALIDATE` gate shared by the run-invariant checks upstream.
//!
//! Every substrate constructor ([`crate::cpu::CoreModel`],
//! [`crate::mem::CacheHierarchy`], [`crate::hmc::HmcCube`]) validates its
//! configuration slice before building state, so an impossible geometry
//! (zero ways, a non-power-of-two line size, a vault count that does not
//! divide the interleaved address space) fails with a typed, descriptive
//! error instead of a wrong simulation or a panic deep inside the model.
//! Config validation is unconditional — it is cheap and runs once per
//! constructed component; only the *per-run* conservation checks upstream
//! consult [`validation_enabled`].

use crate::config::{CacheConfig, CacheLevelConfig, CoreConfig, HmcConfig, SimConfig};
use crate::mem::addr::Region;

/// Why a configuration was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Core count outside the hierarchy's supported range.
    CoreCount(usize),
    /// `issue_width == 0`.
    ZeroIssueWidth,
    /// `rob_size == 0`.
    EmptyRob,
    /// `mshrs == 0`.
    ZeroMshrs,
    /// Cache line size that is zero or not a power of two.
    LineSize(usize),
    /// A cache level with zero ways.
    ZeroWays(&'static str),
    /// A cache level too small to hold even one set of lines.
    ZeroSets(&'static str),
    /// Cache lines per level not divisible by the associativity.
    Geometry {
        /// Which level ("L1"/"L2"/"L3").
        level: &'static str,
        /// Lines the capacity holds at the configured line size.
        lines: usize,
        /// Configured associativity.
        ways: usize,
    },
    /// `vaults == 0`.
    ZeroVaults,
    /// `banks_per_vault == 0`.
    ZeroBanks,
    /// `fus_per_vault == 0`.
    ZeroFus,
    /// `links == 0`.
    ZeroLinks,
    /// Vault interleave granularity that is zero or not a power of two.
    Interleave(u64),
    /// The vault count does not divide the region address space evenly,
    /// so round-robin interleaving would load vaults unequally.
    VaultSplit {
        /// Configured vault count.
        vaults: usize,
        /// Interleave blocks in one address region.
        blocks: u64,
    },
    /// `cubes == 0` in a multi-cube chain backend.
    ZeroCubes,
    /// Cube interleave granularity that is zero or not a power of two.
    CubeInterleave(u64),
    /// The cube count does not divide the region address space evenly,
    /// so round-robin interleaving would load cubes unequally.
    CubeSplit {
        /// Configured cube count.
        cubes: usize,
        /// Interleave blocks in one address region.
        blocks: u64,
    },
    /// `ranks == 0` in a DPU backend.
    ZeroRanks,
    /// `dpus_per_rank == 0` in a DPU backend.
    ZeroDpus,
    /// A numeric field that must be strictly positive and finite.
    NonPositive {
        /// Dotted field path.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A numeric field that must be non-negative and finite.
    Negative {
        /// Dotted field path.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A numeric field that must be a fraction in `[0, 1]`.
    Fraction {
        /// Dotted field path.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl ConfigError {
    /// Stable snake-case identifier of this error variant, for structured
    /// (machine-readable) error reporting — e.g. the experiment service
    /// maps a rejected run configuration to a JSON error body carrying
    /// this id. One id per variant; ids never change once published.
    pub fn id(&self) -> &'static str {
        match self {
            ConfigError::CoreCount(_) => "core_count",
            ConfigError::ZeroIssueWidth => "zero_issue_width",
            ConfigError::EmptyRob => "empty_rob",
            ConfigError::ZeroMshrs => "zero_mshrs",
            ConfigError::LineSize(_) => "line_size",
            ConfigError::ZeroWays(_) => "zero_ways",
            ConfigError::ZeroSets(_) => "zero_sets",
            ConfigError::Geometry { .. } => "cache_geometry",
            ConfigError::ZeroVaults => "zero_vaults",
            ConfigError::ZeroBanks => "zero_banks",
            ConfigError::ZeroFus => "zero_fus",
            ConfigError::ZeroLinks => "zero_links",
            ConfigError::Interleave(_) => "vault_interleave",
            ConfigError::VaultSplit { .. } => "vault_split",
            ConfigError::ZeroCubes => "zero_cubes",
            ConfigError::CubeInterleave(_) => "cube_interleave",
            ConfigError::CubeSplit { .. } => "cube_split",
            ConfigError::ZeroRanks => "zero_ranks",
            ConfigError::ZeroDpus => "zero_dpus",
            ConfigError::NonPositive { .. } => "non_positive",
            ConfigError::Negative { .. } => "negative",
            ConfigError::Fraction { .. } => "fraction",
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::CoreCount(n) => {
                write!(
                    f,
                    "core count {n} outside the supported range: 1..=16 cores supported"
                )
            }
            ConfigError::ZeroIssueWidth => write!(f, "issue width must be positive"),
            ConfigError::EmptyRob => write!(f, "ROB must be non-empty"),
            ConfigError::ZeroMshrs => write!(f, "need at least one MSHR"),
            ConfigError::LineSize(n) => {
                write!(f, "cache line size {n} must be a non-zero power of two")
            }
            ConfigError::ZeroWays(level) => write!(f, "{level} must have at least one way"),
            ConfigError::ZeroSets(level) => {
                write!(
                    f,
                    "{level} capacity holds zero sets at the configured line size"
                )
            }
            ConfigError::Geometry { level, lines, ways } => write!(
                f,
                "{level} cache lines ({lines}) must divide evenly into {ways} ways"
            ),
            ConfigError::ZeroVaults => write!(f, "need at least one vault"),
            ConfigError::ZeroBanks => write!(f, "need at least one bank per vault"),
            ConfigError::ZeroFus => write!(f, "need at least one FU per vault"),
            ConfigError::ZeroLinks => write!(f, "need at least one link"),
            ConfigError::Interleave(n) => {
                write!(f, "vault interleave {n} must be a non-zero power of two")
            }
            ConfigError::VaultSplit { vaults, blocks } => write!(
                f,
                "vault count {vaults} does not divide the address space \
                 ({blocks} interleave blocks per region)"
            ),
            ConfigError::ZeroCubes => write!(f, "need at least one cube in the chain"),
            ConfigError::CubeInterleave(n) => {
                write!(f, "cube interleave {n} must be a non-zero power of two")
            }
            ConfigError::CubeSplit { cubes, blocks } => write!(
                f,
                "cube count {cubes} does not divide the address space \
                 ({blocks} interleave blocks per region)"
            ),
            ConfigError::ZeroRanks => write!(f, "need at least one DRAM rank"),
            ConfigError::ZeroDpus => write!(f, "need at least one DPU per rank"),
            ConfigError::NonPositive { field, value } => {
                write!(f, "{field} must be positive and finite, got {value}")
            }
            ConfigError::Negative { field, value } => {
                write!(f, "{field} must be non-negative and finite, got {value}")
            }
            ConfigError::Fraction { field, value } => {
                write!(f, "{field} must be in [0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Whether the per-run conservation checks are on.
///
/// * `GRAPHPIM_VALIDATE=0` (or empty) — off;
/// * `GRAPHPIM_VALIDATE=<anything else>` — on;
/// * unset — on in debug builds (so `cargo test` enforces every
///   invariant), off in release builds (so benches and figure sweeps pay
///   nothing unless they opt in).
pub fn validation_enabled() -> bool {
    match std::env::var_os("GRAPHPIM_VALIDATE") {
        Some(v) => {
            let v = v.to_string_lossy();
            !(v.is_empty() || v == "0")
        }
        None => cfg!(debug_assertions),
    }
}

fn positive(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(ConfigError::NonPositive { field, value })
    }
}

fn non_negative(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if value.is_finite() && value >= 0.0 {
        Ok(())
    } else {
        Err(ConfigError::Negative { field, value })
    }
}

/// Checks that `value` is a finite fraction in `[0, 1]` (used by the
/// system-level config checks upstream).
pub fn fraction(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(ConfigError::Fraction { field, value })
    }
}

impl CoreConfig {
    /// Checks the pipeline parameters for internal consistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 || self.cores > 16 {
            return Err(ConfigError::CoreCount(self.cores));
        }
        if self.issue_width == 0 {
            return Err(ConfigError::ZeroIssueWidth);
        }
        if self.rob_size == 0 {
            return Err(ConfigError::EmptyRob);
        }
        if self.mshrs == 0 {
            return Err(ConfigError::ZeroMshrs);
        }
        positive("core.clock_ghz", self.clock_ghz)?;
        non_negative("core.atomic_incore_cycles", self.atomic_incore_cycles)?;
        non_negative("core.mispredict_penalty", self.mispredict_penalty)?;
        non_negative(
            "core.frontend_stall_per_instr",
            self.frontend_stall_per_instr,
        )?;
        Ok(())
    }
}

fn validate_level(
    level: &'static str,
    cfg: &CacheLevelConfig,
    line_bytes: usize,
) -> Result<(), ConfigError> {
    if cfg.ways == 0 {
        return Err(ConfigError::ZeroWays(level));
    }
    let lines = cfg.capacity_bytes / line_bytes;
    if lines == 0 {
        return Err(ConfigError::ZeroSets(level));
    }
    if !lines.is_multiple_of(cfg.ways) {
        return Err(ConfigError::Geometry {
            level,
            lines,
            ways: cfg.ways,
        });
    }
    Ok(())
}

impl CacheConfig {
    /// Checks line size and the geometry of every level.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::LineSize(self.line_bytes));
        }
        validate_level("L1", &self.l1, self.line_bytes)?;
        validate_level("L2", &self.l2, self.line_bytes)?;
        validate_level("L3", &self.l3, self.line_bytes)?;
        Ok(())
    }
}

impl HmcConfig {
    /// Checks cube structure, timing, and the vault/address-space split.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.vaults == 0 {
            return Err(ConfigError::ZeroVaults);
        }
        if self.banks_per_vault == 0 {
            return Err(ConfigError::ZeroBanks);
        }
        if self.fus_per_vault == 0 {
            return Err(ConfigError::ZeroFus);
        }
        if self.links == 0 {
            return Err(ConfigError::ZeroLinks);
        }
        if self.vault_interleave_bytes == 0 || !self.vault_interleave_bytes.is_power_of_two() {
            return Err(ConfigError::Interleave(self.vault_interleave_bytes));
        }
        // One address region spans `Structure.base() - Meta.base()` bytes
        // (16 TiB); round-robin interleaving is only uniform when the vault
        // count divides the region's block count.
        let region_bytes = Region::Structure.base() - Region::Meta.base();
        let blocks = region_bytes / self.vault_interleave_bytes;
        if !blocks.is_multiple_of(self.vaults as u64) {
            return Err(ConfigError::VaultSplit {
                vaults: self.vaults,
                blocks,
            });
        }
        positive("hmc.link_gbps", self.link_gbps)?;
        positive("hmc.t_cl_ns", self.t_cl_ns)?;
        non_negative("hmc.t_ras_ns", self.t_ras_ns)?;
        non_negative("hmc.t_ccd_ns", self.t_ccd_ns)?;
        non_negative("hmc.link_latency_ns", self.link_latency_ns)?;
        non_negative("hmc.vault_overhead_ns", self.vault_overhead_ns)?;
        non_negative("hmc.fu_op_ns", self.fu_op_ns)?;
        Ok(())
    }
}

impl SimConfig {
    /// Validates every slice of the substrate configuration, including
    /// the selected memory backend's parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.core.validate()?;
        self.cache.validate()?;
        self.hmc.validate()?;
        self.backend.validate(self)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configs_validate() {
        SimConfig::hpca_default().validate().expect("hpca valid");
        SimConfig::test_tiny().validate().expect("tiny valid");
    }

    #[test]
    fn zero_issue_width_rejected() {
        let mut c = SimConfig::hpca_default();
        c.core.issue_width = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroIssueWidth));
        assert!(c
            .core
            .validate()
            .unwrap_err()
            .to_string()
            .contains("issue width"));
    }

    #[test]
    fn zero_rob_and_mshrs_rejected() {
        let mut c = SimConfig::hpca_default();
        c.core.rob_size = 0;
        assert_eq!(c.validate(), Err(ConfigError::EmptyRob));
        let mut c = SimConfig::hpca_default();
        c.core.mshrs = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroMshrs));
    }

    #[test]
    fn core_count_bounds() {
        let mut c = SimConfig::hpca_default();
        c.core.cores = 0;
        assert_eq!(c.validate(), Err(ConfigError::CoreCount(0)));
        c.core.cores = 17;
        assert_eq!(c.validate(), Err(ConfigError::CoreCount(17)));
    }

    #[test]
    fn non_power_of_two_line_size_rejected() {
        let mut c = SimConfig::hpca_default();
        c.cache.line_bytes = 48;
        assert_eq!(c.validate(), Err(ConfigError::LineSize(48)));
        c.cache.line_bytes = 0;
        assert_eq!(c.validate(), Err(ConfigError::LineSize(0)));
    }

    #[test]
    fn zero_ways_and_bad_geometry_rejected() {
        let mut c = SimConfig::hpca_default();
        c.cache.l2.ways = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroWays("L2")));
        let mut c = SimConfig::hpca_default();
        c.cache.l1.ways = 3;
        let err = c.validate().unwrap_err();
        assert!(matches!(err, ConfigError::Geometry { level: "L1", .. }));
        // Same wording as the legacy assert in `CacheLevelConfig::sets`.
        assert!(err.to_string().contains("divide evenly"));
    }

    #[test]
    fn tiny_capacity_rejected() {
        let mut c = SimConfig::hpca_default();
        c.cache.l1.capacity_bytes = 32; // below one 64 B line
        assert_eq!(c.validate(), Err(ConfigError::ZeroSets("L1")));
    }

    #[test]
    fn hmc_structure_rejected() {
        for (field, err) in [
            ("vaults", ConfigError::ZeroVaults),
            ("banks", ConfigError::ZeroBanks),
            ("fus", ConfigError::ZeroFus),
            ("links", ConfigError::ZeroLinks),
        ] {
            let mut c = SimConfig::hpca_default();
            match field {
                "vaults" => c.hmc.vaults = 0,
                "banks" => c.hmc.banks_per_vault = 0,
                "fus" => c.hmc.fus_per_vault = 0,
                _ => c.hmc.links = 0,
            }
            assert_eq!(c.validate(), Err(err), "{field}");
        }
    }

    #[test]
    fn vault_split_must_divide_address_space() {
        let mut c = SimConfig::hpca_default();
        c.hmc.vaults = 7; // 2^44 / 256 blocks are not divisible by 7
        assert!(matches!(
            c.validate(),
            Err(ConfigError::VaultSplit { vaults: 7, .. })
        ));
        // Every power-of-two vault count divides the space.
        for vaults in [1usize, 2, 4, 8, 16, 32] {
            let mut c = SimConfig::hpca_default();
            c.hmc.vaults = vaults;
            assert_eq!(c.validate(), Ok(()), "{vaults} vaults");
        }
    }

    #[test]
    fn bad_interleave_rejected() {
        let mut c = SimConfig::hpca_default();
        c.hmc.vault_interleave_bytes = 192;
        assert_eq!(c.validate(), Err(ConfigError::Interleave(192)));
        c.hmc.vault_interleave_bytes = 0;
        assert_eq!(c.validate(), Err(ConfigError::Interleave(0)));
    }

    #[test]
    fn numeric_fields_must_be_finite() {
        let mut c = SimConfig::hpca_default();
        c.core.clock_ghz = 0.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositive {
                field: "core.clock_ghz",
                ..
            })
        ));
        let mut c = SimConfig::hpca_default();
        c.hmc.t_cl_ns = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = SimConfig::hpca_default();
        c.core.atomic_incore_cycles = -1.0;
        assert!(matches!(c.validate(), Err(ConfigError::Negative { .. })));
    }

    #[test]
    fn errors_display_helpfully() {
        let msgs = [
            ConfigError::ZeroVaults.to_string(),
            ConfigError::ZeroIssueWidth.to_string(),
            ConfigError::LineSize(48).to_string(),
            ConfigError::VaultSplit {
                vaults: 7,
                blocks: 99,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn error_ids_are_distinct_snake_case() {
        let errs = [
            ConfigError::CoreCount(0),
            ConfigError::ZeroIssueWidth,
            ConfigError::EmptyRob,
            ConfigError::ZeroMshrs,
            ConfigError::LineSize(48),
            ConfigError::ZeroWays("L1"),
            ConfigError::ZeroSets("L1"),
            ConfigError::Geometry {
                level: "L1",
                lines: 3,
                ways: 2,
            },
            ConfigError::ZeroVaults,
            ConfigError::ZeroBanks,
            ConfigError::ZeroFus,
            ConfigError::ZeroLinks,
            ConfigError::Interleave(3),
            ConfigError::VaultSplit {
                vaults: 7,
                blocks: 99,
            },
            ConfigError::ZeroCubes,
            ConfigError::CubeInterleave(3),
            ConfigError::CubeSplit {
                cubes: 7,
                blocks: 99,
            },
            ConfigError::ZeroRanks,
            ConfigError::ZeroDpus,
            ConfigError::NonPositive {
                field: "x",
                value: 0.0,
            },
            ConfigError::Negative {
                field: "x",
                value: -1.0,
            },
            ConfigError::Fraction {
                field: "x",
                value: 2.0,
            },
        ];
        let ids: Vec<&str> = errs.iter().map(|e| e.id()).collect();
        let unique: std::collections::HashSet<&&str> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len(), "ids must be distinct: {ids:?}");
        for id in ids {
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "id must be snake_case: {id}"
            );
        }
    }

    #[test]
    fn gate_reads_environment() {
        // Cannot mutate the process environment safely in tests; just make
        // sure the call is well-defined either way.
        let _ = validation_enabled();
    }
}
