//! Interval-based approximation of an out-of-order core.
//!
//! Instead of ticking every pipeline stage, the model tracks the few
//! quantities that determine graph-workload performance (Section II of the
//! paper):
//!
//! * **issue bandwidth** — every instruction consumes `1/width` cycles;
//! * **ROB occupancy** — completions enter a FIFO window; when the window
//!   fills, the core stalls until the oldest entry retires (this is what
//!   makes dependent long-latency misses expensive);
//! * **MSHR-bounded MLP** — only `mshrs` long memory operations may be in
//!   flight; further misses stall until one completes;
//! * **dependent issue** — an op marked `dep` cannot issue before the
//!   previous result-producing op completes (pointer chasing);
//! * **host atomics** — pay a fixed in-core serialization (store-buffer
//!   drain + locked-RMW pipeline cost, Section II-D) that stalls issue,
//!   while the RMW's data path overlaps like an ordinary miss. Cycles are
//!   attributed to the `Atomic-inCore` / `Atomic-inCache` buckets of Fig. 9;
//! * **PIM atomics** — issue like ordinary (posted or returning) memory
//!   operations: no serialization at all — GraphPIM's speedup mechanism.

use crate::attrib::CoreAttrib;
use crate::config::CoreConfig;
use crate::telemetry::Telemetry;
use crate::Cycle;

/// Per-core event counters and attributed cycles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreStats {
    /// Retired instructions.
    pub instructions: u64,
    /// Memory operations (loads, stores, atomics).
    pub memory_ops: u64,
    /// Atomics executed host-side.
    pub host_atomics: u64,
    /// Atomics offloaded to the HMC.
    pub pim_atomics: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Cycles lost to frontend fetch/decode stalls.
    pub frontend_cycles: f64,
    /// Cycles lost to misprediction flushes.
    pub badspec_cycles: f64,
    /// Host-atomic cycles: pipeline freeze + write-buffer drain
    /// (`Atomic-inCore` in Figure 9).
    pub atomic_incore_cycles: f64,
    /// Host-atomic cycles: cache checking, coherence, and memory service
    /// (`Atomic-inCache` in Figure 9).
    pub atomic_incache_cycles: f64,
}

impl CoreStats {
    /// Cycles spent usefully retiring at full width.
    pub fn retiring_cycles(&self, width: u32) -> f64 {
        self.instructions as f64 / width as f64
    }

    /// Adds every counter from `other` into `self` (used to aggregate
    /// per-core stats into a machine-wide total).
    pub fn accumulate(&mut self, other: &CoreStats) {
        self.instructions += other.instructions;
        self.memory_ops += other.memory_ops;
        self.host_atomics += other.host_atomics;
        self.pim_atomics += other.pim_atomics;
        self.branches += other.branches;
        self.mispredicts += other.mispredicts;
        self.frontend_cycles += other.frontend_cycles;
        self.badspec_cycles += other.badspec_cycles;
        self.atomic_incore_cycles += other.atomic_incore_cycles;
        self.atomic_incache_cycles += other.atomic_incache_cycles;
    }

    /// Reports every counter under `prefix` (e.g. `core` →
    /// `core.instructions`, `core.memory_ops`, ...).
    pub fn report_telemetry(&self, prefix: &str, sink: &mut dyn Telemetry) {
        sink.record(&format!("{prefix}.instructions"), self.instructions as f64);
        sink.record(&format!("{prefix}.memory_ops"), self.memory_ops as f64);
        sink.record(&format!("{prefix}.host_atomics"), self.host_atomics as f64);
        sink.record(&format!("{prefix}.pim_atomics"), self.pim_atomics as f64);
        sink.record(&format!("{prefix}.branches"), self.branches as f64);
        sink.record(&format!("{prefix}.mispredicts"), self.mispredicts as f64);
        sink.record(&format!("{prefix}.frontend_cycles"), self.frontend_cycles);
        sink.record(&format!("{prefix}.badspec_cycles"), self.badspec_cycles);
        sink.record(
            &format!("{prefix}.atomic_incore_cycles"),
            self.atomic_incore_cycles,
        );
        sink.record(
            &format!("{prefix}.atomic_incache_cycles"),
            self.atomic_incache_cycles,
        );
    }
}

/// One simulated core.
#[derive(Debug, Clone)]
pub struct CoreModel {
    issue_cost: f64,
    frontend_stall: f64,
    rob_size: usize,
    mshrs: usize,
    atomic_incore: f64,
    mispredict_penalty: f64,
    clock: Cycle,
    /// In-order retirement window, as a power-of-two ring buffer: `rob_len`
    /// live completion times starting at `rob_head & rob_mask`. A plain
    /// masked ring beats `VecDeque` here — `retire_push` runs once per
    /// instruction group and is one of the hottest leaves in the simulator
    /// profile, and `VecDeque`'s non-power-of-two wrap logic shows up in it.
    rob: Box<[Cycle]>,
    rob_head: usize,
    rob_len: usize,
    rob_mask: usize,
    outstanding: Vec<Cycle>,
    last_result: Cycle,
    stats: CoreStats,
    attrib: Option<CoreAttrib>,
}

impl CoreModel {
    /// Builds a core from the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `issue_width`, `rob_size`, or `mshrs` is zero.
    pub fn new(config: &CoreConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid CoreConfig: {e}");
        }
        CoreModel {
            issue_cost: 1.0 / config.issue_width as f64,
            frontend_stall: config.frontend_stall_per_instr,
            rob_size: config.rob_size,
            mshrs: config.mshrs,
            atomic_incore: config.atomic_incore_cycles,
            mispredict_penalty: config.mispredict_penalty,
            clock: 0.0,
            // Lengths never exceed rob_size / mshrs (both enforced at the
            // push sites), so full pre-sizing makes the steady-state hot
            // loop allocation-free.
            rob: vec![0.0; config.rob_size.next_power_of_two()].into_boxed_slice(),
            rob_head: 0,
            rob_len: 0,
            rob_mask: config.rob_size.next_power_of_two() - 1,
            outstanding: Vec::with_capacity(config.mshrs),
            last_result: 0.0,
            stats: CoreStats::default(),
            attrib: None,
        }
    }

    /// Current core-local time in cycles.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.clock
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Turns on cycle attribution. Recording only observes clock deltas the
    /// model already computed, so timing is bit-identical either way.
    pub fn enable_attribution(&mut self) {
        self.attrib = Some(CoreAttrib::default());
    }

    /// The attribution ledger, if [`CoreModel::enable_attribution`] was
    /// called. Its buckets telescope: their sum equals [`CoreModel::now`].
    pub fn attrib(&self) -> Option<&CoreAttrib> {
        self.attrib.as_ref()
    }

    /// Executes `n` ALU instructions.
    #[inline]
    pub fn compute(&mut self, n: u32) {
        if n == 0 {
            return;
        }
        self.advance_issue(n as u64);
        let completion = self.clock + 1.0;
        self.retire_push(completion);
        self.last_result = completion;
    }

    /// Executes a conditional branch.
    ///
    /// Correctly predicted branches are free: the OoO core speculates past
    /// them even when the condition depends on an outstanding load. A
    /// mispredicted `dep` branch, however, cannot *resolve* until its data
    /// arrives — the flush happens at data arrival plus the recovery
    /// penalty (this is the dependent-instruction-block effect of the
    /// paper's Figure 8).
    #[inline]
    pub fn branch(&mut self, mispredicted: bool, dep: bool) {
        self.advance_issue(1);
        self.stats.branches += 1;
        if mispredicted {
            self.stats.mispredicts += 1;
            if dep {
                // Resolve only when the feeding result is available.
                self.wait_for_result();
            }
            self.clock += self.mispredict_penalty;
            self.stats.badspec_cycles += self.mispredict_penalty;
            if let Some(a) = &mut self.attrib {
                a.bad_speculation += self.mispredict_penalty;
            }
        }
    }

    /// Begins a load/store/PIM-atomic: pays issue bandwidth, honors the
    /// dependence, and acquires an MSHR slot if the access will be long
    /// (`long` = known miss / uncached). Returns the absolute issue time to
    /// hand to the memory system.
    #[inline]
    pub fn begin_mem(&mut self, dep: bool, long: bool) -> Cycle {
        self.advance_issue(1);
        self.stats.memory_ops += 1;
        if dep {
            self.wait_for_result();
        }
        if long {
            self.mshr_acquire();
        }
        self.clock
    }

    /// Completes a load begun with [`CoreModel::begin_mem`]. `long` accesses
    /// occupy an MSHR until done; loads produce a result later `dep` ops
    /// wait on.
    #[inline]
    pub fn complete_load(&mut self, completion: Cycle, long: bool) {
        self.retire_push(completion);
        if long {
            self.outstanding.push(completion);
        }
        self.last_result = completion;
    }

    /// Completes a store begun with [`CoreModel::begin_mem`]. Stores are
    /// posted: they retire at issue + 1 regardless of memory service time.
    #[inline]
    pub fn complete_store(&mut self) {
        self.retire_push(self.clock + 1.0);
    }

    /// Completes a posted operation that nevertheless occupies an MSHR
    /// until `completion` (the U-PEI offload path: posted PEI atomics
    /// still traverse the host cache/LSQ resources). Retires immediately;
    /// the resource is held.
    pub fn complete_posted_tracked(&mut self, completion: Cycle) {
        self.stats.pim_atomics += 1;
        self.retire_push(self.clock + 1.0);
        self.outstanding.push(completion);
    }

    /// Completes a PIM atomic begun with [`CoreModel::begin_mem`].
    /// Returning atomics behave like long loads (their response feeds
    /// dependents); posted atomics retire immediately — the barrier is what
    /// waits for their memory-side completion.
    pub fn complete_pim_atomic(&mut self, response_at: Cycle, returns: bool) {
        self.stats.pim_atomics += 1;
        if returns {
            self.retire_push(response_at);
            self.outstanding.push(response_at);
            self.last_result = response_at;
        } else {
            self.retire_push(self.clock + 1.0);
        }
    }

    /// Executes a host atomic.
    ///
    /// The locked RMW pays a fixed in-core cost (store-buffer drain +
    /// partial pipeline serialization — the `Atomic-inCore` bucket of
    /// Figure 9) that stalls issue, plus the data-path service
    /// (`service_latency`, of which `cache_latency` is the cache checking /
    /// coherence component — `Atomic-inCache`). The data-path part behaves
    /// like an ordinary memory operation: it overlaps with independent
    /// work through the ROB/MSHR window, matching the paper's observation
    /// that the *extra* cost of an atomic over a plain access is the
    /// in-core serialization and coherence work, not a full pipeline
    /// flush (Figures 4 and 9).
    pub fn host_atomic(&mut self, service_latency: f64, cache_latency: f64) {
        let _ = self.host_atomic_begin();
        self.host_atomic_finish(service_latency, cache_latency);
    }

    /// First phase of a host atomic: pays issue bandwidth plus the fixed
    /// in-core serialization, returning the time the RMW starts.
    pub fn host_atomic_begin(&mut self) -> Cycle {
        self.advance_issue(1);
        self.stats.host_atomics += 1;
        self.stats.memory_ops += 1;
        self.stats.atomic_incore_cycles += self.atomic_incore;
        self.clock += self.atomic_incore;
        if let Some(a) = &mut self.attrib {
            a.atomic_serialize += self.atomic_incore;
        }
        self.mshr_acquire();
        self.clock
    }

    /// Second phase of a host atomic begun with
    /// [`CoreModel::host_atomic_begin`]: the RMW's data path takes
    /// `service_latency` cycles (of which `cache_latency` is cache
    /// checking / coherence); it completes out of order like a load, and
    /// its result feeds dependents.
    pub fn host_atomic_finish(&mut self, service_latency: f64, cache_latency: f64) {
        self.stats.atomic_incache_cycles += cache_latency;
        let completion = self.clock + service_latency;
        self.retire_push(completion);
        self.outstanding.push(completion);
        self.last_result = completion;
    }

    /// Acquires an MSHR slot for an access discovered to miss after the
    /// cache lookup; returns the (possibly stalled) current time.
    pub fn acquire_mshr(&mut self) -> Cycle {
        self.mshr_acquire();
        self.clock
    }

    /// Synchronizes this core to a barrier release time and clears
    /// in-flight state.
    pub fn barrier(&mut self, release: Cycle) {
        let before = self.clock;
        self.clock = self.clock.max(release);
        if let Some(a) = &mut self.attrib {
            a.barrier_wait += self.clock - before;
        }
        self.rob_len = 0;
        self.outstanding.clear();
        self.last_result = self.clock;
    }

    /// Time at which every in-flight op (ROB + MSHRs) has completed.
    pub fn drain_time(&self) -> Cycle {
        let mut rob_max = self.clock;
        for k in 0..self.rob_len {
            rob_max = rob_max.max(self.rob[(self.rob_head + k) & self.rob_mask]);
        }
        self.outstanding.iter().copied().fold(rob_max, f64::max)
    }

    /// Finishes execution: waits for all in-flight work and returns the
    /// final time.
    pub fn finish(&mut self) -> Cycle {
        let before = self.clock;
        self.clock = self.drain_time();
        if let Some(a) = &mut self.attrib {
            a.drain_wait += self.clock - before;
        }
        self.rob_len = 0;
        self.outstanding.clear();
        self.clock
    }

    #[inline]
    fn advance_issue(&mut self, n: u64) {
        self.stats.instructions += n;
        let issue = n as f64 * self.issue_cost;
        self.clock += issue;
        let fe = n as f64 * self.frontend_stall;
        self.clock += fe;
        self.stats.frontend_cycles += fe;
        if let Some(a) = &mut self.attrib {
            a.issue += issue;
            a.frontend += fe;
        }
    }

    #[inline]
    fn wait_for_result(&mut self) {
        let before = self.clock;
        self.clock = self.clock.max(self.last_result);
        if let Some(a) = &mut self.attrib {
            a.dep_wait += self.clock - before;
        }
    }

    #[inline]
    fn retire_push(&mut self, completion: Cycle) {
        // Retire everything already complete (in order: stop at the first
        // entry still in flight, even if later ones have completed).
        while self.rob_len > 0 && self.rob[self.rob_head & self.rob_mask] <= self.clock {
            self.rob_head = self.rob_head.wrapping_add(1);
            self.rob_len -= 1;
        }
        if self.rob_len >= self.rob_size {
            let head = self.rob[self.rob_head & self.rob_mask];
            self.rob_head = self.rob_head.wrapping_add(1);
            self.rob_len -= 1;
            let before = self.clock;
            self.clock = self.clock.max(head);
            if let Some(a) = &mut self.attrib {
                a.rob_stall += self.clock - before;
            }
        }
        self.rob[self.rob_head.wrapping_add(self.rob_len) & self.rob_mask] = completion;
        self.rob_len += 1;
    }

    #[inline]
    fn mshr_acquire(&mut self) {
        self.outstanding.retain(|&c| c > self.clock);
        if self.outstanding.len() >= self.mshrs {
            let earliest = self
                .outstanding
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            let before = self.clock;
            self.clock = self.clock.max(earliest);
            if let Some(a) = &mut self.attrib {
                a.mshr_wait += self.clock - before;
            }
            self.outstanding.retain(|&c| c > self.clock);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn core() -> CoreModel {
        CoreModel::new(&SimConfig::hpca_default().core)
    }

    #[test]
    fn stats_accumulate_and_report() {
        let a = CoreStats {
            instructions: 100,
            memory_ops: 10,
            host_atomics: 3,
            pim_atomics: 4,
            branches: 20,
            mispredicts: 2,
            frontend_cycles: 5.0,
            badspec_cycles: 6.0,
            atomic_incore_cycles: 7.0,
            atomic_incache_cycles: 8.0,
        };
        let mut total = a.clone();
        total.accumulate(&a);
        assert_eq!(total.instructions, 200);
        assert_eq!(total.pim_atomics, 8);
        assert_eq!(total.atomic_incache_cycles, 16.0);

        let mut reg = crate::telemetry::CounterRegistry::default();
        a.report_telemetry("core", &mut reg);
        assert_eq!(reg.get("core.instructions"), Some(100.0));
        assert_eq!(reg.get("core.mispredicts"), Some(2.0));
        assert_eq!(reg.get("core.atomic_incore_cycles"), Some(7.0));
        assert_eq!(reg.len(), 10);
    }

    #[test]
    fn compute_advances_by_issue_width() {
        let mut c = core();
        c.compute(400);
        // 400 instr / 4-wide = 100 cycles + frontend component.
        assert!(c.now() >= 100.0);
        assert!(c.now() < 140.0);
        assert_eq!(c.stats().instructions, 400);
    }

    #[test]
    fn independent_loads_overlap() {
        let mut c = core();
        // Ten independent 100-cycle loads: with MLP they complete in ~100
        // cycles, not 1000.
        for _ in 0..10 {
            let at = c.begin_mem(false, true);
            c.complete_load(at + 100.0, true);
        }
        let done = c.finish();
        assert!(done < 250.0, "independent loads should overlap: {done}");
    }

    #[test]
    fn dependent_loads_serialize() {
        let mut c = core();
        for _ in 0..10 {
            let at = c.begin_mem(true, true);
            c.complete_load(at + 100.0, true);
        }
        let done = c.finish();
        assert!(done > 900.0, "dependent loads must serialize: {done}");
    }

    #[test]
    fn mshrs_bound_parallelism() {
        let mut few = CoreModel::new(&{
            let mut cfg = SimConfig::hpca_default().core;
            cfg.mshrs = 2;
            cfg
        });
        let mut many = core(); // 10 MSHRs
        for c in [&mut few, &mut many] {
            for _ in 0..20 {
                let at = c.begin_mem(false, true);
                c.complete_load(at + 100.0, true);
            }
        }
        assert!(few.finish() > many.finish());
    }

    #[test]
    fn rob_bounds_window() {
        let mut small = CoreModel::new(&{
            let mut cfg = SimConfig::hpca_default().core;
            cfg.rob_size = 4;
            cfg.mshrs = 64;
            cfg
        });
        let mut large = CoreModel::new(&{
            let mut cfg = SimConfig::hpca_default().core;
            cfg.rob_size = 512;
            cfg.mshrs = 64;
            cfg
        });
        for c in [&mut small, &mut large] {
            for _ in 0..64 {
                let at = c.begin_mem(false, true);
                c.complete_load(at + 200.0, true);
            }
        }
        assert!(small.finish() > large.finish());
    }

    #[test]
    fn host_atomic_pays_incore_serialization() {
        let mut with_atomic = core();
        let mut without = core();
        with_atomic.host_atomic(100.0, 50.0);
        without.compute(1);
        // The atomic stalls issue by the fixed in-core cost; the data path
        // itself overlaps like a load.
        let incore = SimConfig::hpca_default().core.atomic_incore_cycles;
        assert!(with_atomic.now() >= without.now() + incore - 1.0);
        assert!((with_atomic.stats().atomic_incore_cycles - incore).abs() < 1e-9);
        assert!((with_atomic.stats().atomic_incache_cycles - 50.0).abs() < 1e-9);
        assert_eq!(with_atomic.stats().host_atomics, 1);
    }

    #[test]
    fn host_atomics_overlap_their_data_path() {
        // Ten independent host atomics with 100-cycle service: the fixed
        // in-core costs serialize, but the data paths overlap via MSHRs.
        let mut c = core();
        for _ in 0..10 {
            c.host_atomic(100.0, 4.0);
        }
        let incore = SimConfig::hpca_default().core.atomic_incore_cycles;
        let done = c.finish();
        assert!(done < 10.0 * (incore + 100.0) * 0.8, "no overlap: {done}");
        assert!(done >= 10.0 * incore, "in-core part serializes: {done}");
    }

    #[test]
    fn pim_atomics_do_not_freeze() {
        let mut host = core();
        let mut pim = core();
        for _ in 0..20 {
            host.host_atomic(100.0, 100.0);
        }
        for _ in 0..20 {
            let at = pim.begin_mem(false, true);
            pim.complete_pim_atomic(at + 100.0, true);
        }
        let host_t = host.finish();
        let pim_t = pim.finish();
        assert!(
            pim_t < host_t / 2.0,
            "PIM atomics should overlap: pim {pim_t}, host {host_t}"
        );
        assert_eq!(pim.stats().pim_atomics, 20);
        assert_eq!(host.stats().host_atomics, 20);
    }

    #[test]
    fn posted_pim_atomic_retires_immediately() {
        let mut c = core();
        let at = c.begin_mem(false, true);
        c.complete_pim_atomic(at + 10_000.0, false);
        // Core time does not chase the memory completion.
        assert!(c.now() < 100.0);
    }

    #[test]
    fn posted_tracked_holds_mshr_without_stalling_retire() {
        let mut c = CoreModel::new(&{
            let mut cfg = SimConfig::hpca_default().core;
            cfg.mshrs = 2;
            cfg
        });
        // Two tracked posted ops fill the MSHRs; a third long op must wait.
        for _ in 0..2 {
            let at = c.begin_mem(false, true);
            c.complete_posted_tracked(at + 500.0);
        }
        let before = c.now();
        let _ = c.begin_mem(false, true);
        assert!(c.now() >= 500.0, "MSHR-full stall expected, was {before}");
    }

    #[test]
    fn mispredict_costs_penalty() {
        let mut c = core();
        let before = c.now();
        c.branch(true, false);
        assert!(c.now() >= before + 14.0);
        assert_eq!(c.stats().mispredicts, 1);
        assert!(c.stats().badspec_cycles >= 14.0);
    }

    #[test]
    fn predictable_branch_is_cheap() {
        let mut c = core();
        c.branch(false, false);
        assert!(c.now() < 1.0);
        assert_eq!(c.stats().mispredicts, 0);
    }

    #[test]
    fn predicted_dependent_branch_is_speculated_past() {
        let mut c = core();
        let at = c.begin_mem(false, true);
        c.complete_load(at + 500.0, true);
        c.branch(false, true);
        // Correct prediction: no stall even though the condition is
        // outstanding.
        assert!(c.now() < 100.0);
    }

    #[test]
    fn mispredicted_dependent_branch_resolves_at_data() {
        let mut c = core();
        let at = c.begin_mem(false, true);
        c.complete_load(at + 500.0, true);
        c.branch(true, true);
        assert!(c.now() >= 500.0 + 14.0);
    }

    #[test]
    fn barrier_synchronizes_and_clears() {
        let mut c = core();
        let at = c.begin_mem(false, true);
        c.complete_load(at + 100.0, true);
        c.barrier(1000.0);
        assert_eq!(c.now(), 1000.0);
        assert_eq!(c.drain_time(), 1000.0);
    }

    #[test]
    fn finish_waits_for_outstanding() {
        let mut c = core();
        let at = c.begin_mem(false, true);
        c.complete_load(at + 777.0, true);
        assert!(c.finish() >= 777.0);
    }

    #[test]
    fn attribution_buckets_telescope_to_clock() {
        let mut c = core();
        c.enable_attribution();
        // Exercise every clock-advancing path: issue, dependence waits,
        // mispredicts, host atomics, MSHR/ROB pressure, barrier, drain.
        for i in 0..300 {
            c.compute(3);
            let dep = i % 3 == 0;
            let at = c.begin_mem(dep, true);
            c.complete_load(at + 150.0, true);
            c.branch(i % 7 == 0, dep);
            if i % 5 == 0 {
                c.host_atomic(120.0, 40.0);
            }
        }
        c.barrier(c.drain_time() + 50.0);
        for _ in 0..20 {
            let at = c.begin_mem(false, true);
            c.complete_load(at + 90.0, true);
        }
        let done = c.finish();
        let a = c.attrib().expect("attribution enabled");
        assert!(
            (a.total() - done).abs() <= 1e-9 * done.max(1.0),
            "attribution must telescope: sum {} vs clock {}",
            a.total(),
            done
        );
        // The big contributors were actually exercised.
        assert!(a.issue > 0.0 && a.dep_wait > 0.0 && a.atomic_serialize > 0.0);
        assert!(a.barrier_wait > 0.0 && a.drain_wait > 0.0);
    }

    #[test]
    fn attribution_off_by_default_and_identical_timing() {
        let run = |attribution: bool| {
            let mut c = core();
            if attribution {
                c.enable_attribution();
            }
            for i in 0..100 {
                c.compute(2);
                let at = c.begin_mem(i % 2 == 0, true);
                c.complete_load(at + 80.0, true);
                c.host_atomic(60.0, 20.0);
            }
            (c.finish(), c.stats().clone())
        };
        let (t_off, s_off) = run(false);
        let (t_on, s_on) = run(true);
        assert_eq!(
            t_off.to_bits(),
            t_on.to_bits(),
            "timing must be bit-identical"
        );
        assert_eq!(s_off, s_on);
        assert!(core().attrib().is_none(), "off by default");
    }

    #[test]
    fn retiring_cycles_formula() {
        let mut c = core();
        c.compute(100);
        assert!((c.stats().retiring_cycles(4) - 25.0).abs() < 1e-9);
    }
}
