//! Core pipeline models.

pub mod core;

pub use core::{CoreModel, CoreStats};
