//! Simulation configuration (Table IV of the paper).

use crate::backend::BackendConfig;
use serde::{Deserialize, Serialize};

/// Core pipeline parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Number of cores (Table IV: 16).
    pub cores: usize,
    /// Core clock in GHz (Table IV: 2 GHz).
    pub clock_ghz: f64,
    /// Issue width in instructions per cycle (Table IV: 4).
    pub issue_width: u32,
    /// Reorder-buffer capacity in instructions.
    pub rob_size: usize,
    /// Outstanding cache-missing memory operations per core (MSHRs).
    pub mshrs: usize,
    /// Fixed in-core cost of a host atomic instruction, in cycles: pipeline
    /// freeze plus write-buffer drain beyond the data access itself
    /// (Section II-D; Schweizer et al. measure ~tens of cycles on Xeon).
    pub atomic_incore_cycles: f64,
    /// Branch misprediction flush penalty, in cycles.
    pub mispredict_penalty: f64,
    /// Frontend (fetch/decode) stall cycles charged per instruction; models
    /// the small constant frontend component of Figure 2.
    pub frontend_stall_per_instr: f64,
}

/// One cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in cycles.
    pub latency_cycles: u32,
}

impl CacheLevelConfig {
    /// Number of sets for a given line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self, line_bytes: usize) -> usize {
        let lines = self.capacity_bytes / line_bytes;
        assert!(
            lines.is_multiple_of(self.ways),
            "cache lines ({lines}) must divide evenly into {} ways",
            self.ways
        );
        lines / self.ways
    }
}

/// The three-level hierarchy (Table IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Cache line size in bytes (Table IV: 64).
    pub line_bytes: usize,
    /// Private L1 data cache (Table IV: 32 KB).
    pub l1: CacheLevelConfig,
    /// Private L2 (Table IV: 256 KB, inclusive).
    pub l2: CacheLevelConfig,
    /// Shared L3 (Table IV: 16 MB, inclusive).
    pub l3: CacheLevelConfig,
    /// Extra latency for invalidating sharers when a host atomic needs
    /// exclusive ownership of a line another core caches.
    pub invalidate_cycles: u32,
}

/// HMC cube parameters (Table IV / HMC 2.0 specification).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HmcConfig {
    /// Number of vaults (Table IV: 32).
    pub vaults: usize,
    /// DRAM banks per vault (Table IV: 512 total / 32 vaults = 16).
    pub banks_per_vault: usize,
    /// Atomic functional units per vault (Figure 11 sweeps 1..16).
    pub fus_per_vault: usize,
    /// tCL = tRCD = tRP in nanoseconds (Table IV: 13.75 ns).
    pub t_cl_ns: f64,
    /// tRAS in nanoseconds (Table IV: 27.5 ns).
    pub t_ras_ns: f64,
    /// Column-to-column delay (bank occupancy of one burst) in
    /// nanoseconds; bounds a single bank's sustainable access rate.
    pub t_ccd_ns: f64,
    /// Number of SerDes links (Table IV: 4).
    pub links: usize,
    /// Peak bandwidth per link in GB/s (Table IV: 120 GB/s).
    pub link_gbps: f64,
    /// One-way link propagation + SerDes latency in nanoseconds.
    pub link_latency_ns: f64,
    /// Vault-controller overhead per request in nanoseconds.
    pub vault_overhead_ns: f64,
    /// Latency of one atomic functional-unit operation in nanoseconds.
    pub fu_op_ns: f64,
    /// Interleaving granularity across vaults, in bytes.
    pub vault_interleave_bytes: u64,
}

impl HmcConfig {
    /// Seconds to move one 128-bit FLIT across the aggregate link budget.
    pub fn flit_seconds(&self) -> f64 {
        const FLIT_BYTES: f64 = 16.0;
        FLIT_BYTES / (self.link_gbps * 1e9 * self.links as f64)
    }
}

/// Complete substrate configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// Cache hierarchy parameters.
    pub cache: CacheConfig,
    /// HMC parameters (the cube slice; also the substrate template the
    /// non-default backends derive their geometry from).
    pub hmc: HmcConfig,
    /// Which memory backend services requests (default: the paper's
    /// single cube).
    pub backend: BackendConfig,
}

impl SimConfig {
    /// The paper's Table IV system: 16 OoO cores at 2 GHz, 4-issue;
    /// 32 KB L1 / 256 KB L2 / 16 MB shared L3, 64 B lines, MESI; one 8 GB
    /// HMC 2.0 cube with 32 vaults, 512 banks, 4 links at 120 GB/s.
    pub fn hpca_default() -> Self {
        SimConfig {
            core: CoreConfig {
                cores: 16,
                clock_ghz: 2.0,
                issue_width: 4,
                rob_size: 192,
                mshrs: 10,
                atomic_incore_cycles: 25.0,
                mispredict_penalty: 14.0,
                frontend_stall_per_instr: 0.05,
            },
            cache: CacheConfig {
                line_bytes: 64,
                l1: CacheLevelConfig {
                    capacity_bytes: 32 * 1024,
                    ways: 8,
                    latency_cycles: 4,
                },
                l2: CacheLevelConfig {
                    capacity_bytes: 256 * 1024,
                    ways: 8,
                    latency_cycles: 12,
                },
                l3: CacheLevelConfig {
                    capacity_bytes: 16 * 1024 * 1024,
                    ways: 16,
                    latency_cycles: 38,
                },
                invalidate_cycles: 30,
            },
            hmc: HmcConfig {
                vaults: 32,
                banks_per_vault: 16,
                fus_per_vault: 16,
                t_cl_ns: 13.75,
                t_ras_ns: 27.5,
                t_ccd_ns: 4.0,
                links: 4,
                link_gbps: 120.0,
                link_latency_ns: 4.0,
                vault_overhead_ns: 2.0,
                fu_op_ns: 1.0,
                vault_interleave_bytes: 256,
            },
            backend: BackendConfig::SingleCube,
        }
    }

    /// Cycles per nanosecond at the configured core clock.
    pub fn cycles_per_ns(&self) -> f64 {
        self.core.clock_ghz
    }

    /// A small configuration for fast unit tests: 2 cores, tiny caches.
    pub fn test_tiny() -> Self {
        let mut c = Self::hpca_default();
        c.core.cores = 2;
        c.cache.l1 = CacheLevelConfig {
            capacity_bytes: 1024,
            ways: 2,
            latency_cycles: 4,
        };
        c.cache.l2 = CacheLevelConfig {
            capacity_bytes: 4096,
            ways: 4,
            latency_cycles: 12,
        };
        c.cache.l3 = CacheLevelConfig {
            capacity_bytes: 16 * 1024,
            ways: 4,
            latency_cycles: 38,
        };
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values() {
        let c = SimConfig::hpca_default();
        assert_eq!(c.core.cores, 16);
        assert_eq!(c.core.issue_width, 4);
        assert_eq!(c.core.clock_ghz, 2.0);
        assert_eq!(c.cache.line_bytes, 64);
        assert_eq!(c.cache.l1.capacity_bytes, 32 * 1024);
        assert_eq!(c.cache.l2.capacity_bytes, 256 * 1024);
        assert_eq!(c.cache.l3.capacity_bytes, 16 * 1024 * 1024);
        assert_eq!(c.hmc.vaults, 32);
        assert_eq!(c.hmc.vaults * c.hmc.banks_per_vault, 512);
        assert_eq!(c.hmc.links, 4);
        assert_eq!(c.hmc.link_gbps, 120.0);
        assert!((c.hmc.t_cl_ns - 13.75).abs() < 1e-12);
        assert!((c.hmc.t_ras_ns - 27.5).abs() < 1e-12);
    }

    #[test]
    fn cache_geometry_divides() {
        let c = SimConfig::hpca_default();
        assert_eq!(c.cache.l1.sets(64), 64);
        assert_eq!(c.cache.l2.sets(64), 512);
        assert_eq!(c.cache.l3.sets(64), 16384);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn bad_geometry_panics() {
        CacheLevelConfig {
            capacity_bytes: 1024,
            ways: 3,
            latency_cycles: 1,
        }
        .sets(64);
    }

    #[test]
    fn flit_time_matches_aggregate_bandwidth() {
        let c = SimConfig::hpca_default();
        // 4 links x 120 GB/s = 480 GB/s; a 16-byte FLIT takes 16/480e9 s.
        let expect = 16.0 / 480e9;
        assert!((c.hmc.flit_seconds() - expect).abs() < 1e-18);
    }

    #[test]
    fn tiny_config_is_smaller() {
        let t = SimConfig::test_tiny();
        assert!(t.cache.l1.capacity_bytes < 32 * 1024);
        assert_eq!(t.core.cores, 2);
    }
}
