//! Pins the default (single-cube) memory backend to the committed
//! bench baseline: `bench_report --check` against
//! `crates/bench/baseline.json` must pass with zero metric drift.
//!
//! This is the backend seam's bit-identity gate in test form: routing
//! the paper's system through the `MemoryBackend` trait object (or any
//! future refactor of that seam) must not move a single model metric.
//! The check tolerance (1e-6 relative) only absorbs decimal
//! round-trips through the JSON report; any real timing change trips
//! it.

use std::process::Command;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full fig07+fig01 sweep at 1k; run with --release"
)]
fn single_cube_reproduces_the_committed_baseline() {
    // Hermetic: a throwaway cache directory forces every run to be
    // simulated fresh, and nothing leaks into the repo's cache.
    let tmp = std::env::temp_dir().join(format!("graphpim-baseline-pin-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create temp dir");
    let out = tmp.join("BENCH.json");
    let output = Command::new(env!("CARGO_BIN_EXE_bench_report"))
        .arg("--check")
        .arg("--out")
        .arg(&out)
        .env("GRAPHPIM_SCALE", "1k")
        .env("GRAPHPIM_CACHE_DIR", &tmp)
        .env("GRAPHPIM_NO_TRACE_STORE", "1")
        .output()
        .expect("spawn bench_report");
    let stderr = String::from_utf8_lossy(&output.stderr);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "bench_report --check must pass against the committed baseline\n\
         --- stdout ---\n{stdout}\n--- stderr ---\n{stderr}"
    );
    assert!(out.exists(), "report must be written");
    std::fs::remove_dir_all(&tmp).ok();
}
