//! Benchmark harness crate for the GraphPIM reproduction.
//!
//! This crate exists mainly for its binaries (one per paper table/figure
//! — see `src/bin/`) and its Criterion benches (`benches/`); the library
//! part carries only small helpers the binaries share. Start with:
//!
//! ```text
//! cargo run --release -p graphpim-bench --bin all_figures
//! cargo run --release -p graphpim-bench --bin run_kernel -- BFS --scale 10k
//! ```

use graphpim::experiments::{figjson, Experiments};

/// True when the binary was invoked with `--json`.
///
/// Figure binaries then print the shared machine-readable document
/// ([`figjson::figure_json`]) instead of the human-readable table, so
/// their stdout matches what `graphpim-serve` serves for the same
/// figure byte for byte (modulo the trailing newline `println!` adds).
pub fn json_flag() -> bool {
    std::env::args().skip(1).any(|a| a == "--json")
}

/// The `--json` front half shared by every figure binary: when the flag
/// is present, prints the figure's JSON document and returns `true` so
/// the caller skips its table rendering.
///
/// # Panics
///
/// Panics if `fig` is not a [`figjson::FIGURES`] id — a binary wiring
/// bug, not a user error.
pub fn emit_figure_json(fig: &str, ctx: &Experiments) -> bool {
    if !json_flag() {
        return false;
    }
    let doc =
        figjson::figure_json(fig, ctx).unwrap_or_else(|| panic!("{fig} is not a served figure id"));
    println!("{doc}");
    true
}

/// Emits the context's trace-store summary to stderr and, when
/// `GRAPHPIM_STORE_STATS_JSON=<file>` is set, dumps the flat
/// `tracestore.*` counter document there (consumed by CI's warm-store
/// check).
pub fn report_store_stats(ctx: &Experiments) {
    let counts = ctx.profile().trace_store();
    graphpim::obs::info(
        "tracestore",
        "store summary",
        &[
            ("captures", &counts.captures),
            ("replays", &counts.replays),
            ("disk_hits", &counts.disk_hits),
            ("misses", &counts.disk_misses),
            ("corrupt", &counts.corrupt),
            ("fallbacks", &counts.replay_fallbacks),
        ],
    );
    if let Some(path) = std::env::var_os("GRAPHPIM_STORE_STATS_JSON") {
        match std::fs::write(&path, ctx.store_stats_json()) {
            Ok(()) => graphpim::obs::info(
                "tracestore",
                "stats written",
                &[("path", &path.to_string_lossy())],
            ),
            Err(e) => graphpim::obs::warn(
                "tracestore",
                "cannot write stats",
                &[("path", &path.to_string_lossy()), ("error", &e)],
            ),
        }
    }
}
