//! Benchmark harness crate for the GraphPIM reproduction.
//!
//! This crate carries no library code; it exists for its binaries (one per
//! paper table/figure — see `src/bin/`) and its Criterion benches
//! (`benches/`). Start with:
//!
//! ```text
//! cargo run --release -p graphpim-bench --bin all_figures
//! cargo run --release -p graphpim-bench --bin run_kernel -- BFS --scale 10k
//! ```
