//! Benchmark harness crate for the GraphPIM reproduction.
//!
//! This crate exists mainly for its binaries (one per paper table/figure
//! — see `src/bin/`) and its Criterion benches (`benches/`); the library
//! part carries only small helpers the binaries share. Start with:
//!
//! ```text
//! cargo run --release -p graphpim-bench --bin all_figures
//! cargo run --release -p graphpim-bench --bin run_kernel -- BFS --scale 10k
//! ```

use graphpim::experiments::Experiments;

/// Emits the context's trace-store summary to stderr and, when
/// `GRAPHPIM_STORE_STATS_JSON=<file>` is set, dumps the flat
/// `tracestore.*` counter document there (consumed by CI's warm-store
/// check).
pub fn report_store_stats(ctx: &Experiments) {
    let counts = ctx.profile().trace_store();
    eprintln!(
        "[tracestore] captures: {}, replays: {}, disk hits: {}, \
         misses: {}, corrupt: {}, fallbacks: {}",
        counts.captures,
        counts.replays,
        counts.disk_hits,
        counts.disk_misses,
        counts.corrupt,
        counts.replay_fallbacks
    );
    if let Some(path) = std::env::var_os("GRAPHPIM_STORE_STATS_JSON") {
        match std::fs::write(&path, ctx.store_stats_json()) {
            Ok(()) => eprintln!("[tracestore] stats written to {}", path.to_string_lossy()),
            Err(e) => eprintln!("[tracestore] cannot write {}: {e}", path.to_string_lossy()),
        }
    }
}
