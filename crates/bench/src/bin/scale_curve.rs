//! Scale-curve driver: wall time and peak RSS of a fig07-style sweep at
//! increasing LDBC sizes, with an asymptotic gate.
//!
//! ```text
//! scale_curve [--sizes 1k,10k,100k] [--check] [--warn-only] [--out PATH]
//!
//! --sizes LIST    comma-separated LDBC sizes to run, ascending
//!                 (default: 1k,10k,100k; add 1m for the nightly tier)
//! --check         gate wall/RSS growth against edge-count growth
//! --warn-only     with --check: report violations but exit 0
//! --out PATH      report path (default: BENCH_SCALE.json)
//! ```
//!
//! Each size runs in a **fresh subprocess** (the binary re-execs itself
//! with `--child <size>`), so `peak_rss_bytes` is a clean per-size
//! high-water mark (`VmHWM` from `/proc/self/status`) instead of the max
//! over every size run so far. Children use in-memory memoization only
//! (no disk run cache) plus a private, initially cold trace store that is
//! deleted afterwards — every size pays the full capture + replay sweep,
//! which is the engine's real end-to-end cost.
//!
//! The gate is asymptotic, not absolute: for each consecutive size pair,
//! wall time and peak RSS may grow at most [`GROWTH_FACTOR`] times as
//! fast as the edge count. Constant overheads (process baseline RSS,
//! startup) make small-size ratios *sub*-linear, so the gate has slack at
//! the bottom of the curve but catches superlinear blowups — an
//! accidentally quadratic loader or a decoded-trace residency regression
//! — long before the 1M tier.

use graphpim::experiments::cache::json;
use graphpim::experiments::{fig07, geomean, parse_scale, Experiments};
use graphpim::tracestore::TraceStore;
use graphpim_graph::generate::LdbcSize;
use std::process::exit;
use std::time::Instant;

/// Allowed wall/RSS growth per unit of edge growth between consecutive
/// sizes. Simulated work is roughly linear in trace ops (∝ edges), so 3×
/// absorbs cache effects and per-size iteration-count drift while still
/// failing hard on anything quadratic.
const GROWTH_FACTOR: f64 = 3.0;

/// Wall-time gates only apply when the smaller size took at least this
/// long — below it the ratio is startup noise, not asymptotics.
const MIN_GATED_WALL: f64 = 0.2;

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\n\nUsage: scale_curve [--sizes 1k,10k,100k] [--check] [--warn-only] [--out PATH]"
    );
    exit(2)
}

struct Options {
    sizes: Vec<LdbcSize>,
    check: bool,
    warn_only: bool,
    out: String,
    child: Option<LdbcSize>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        sizes: vec![LdbcSize::K1, LdbcSize::K10, LdbcSize::K100],
        check: false,
        warn_only: false,
        out: "BENCH_SCALE.json".to_string(),
        child: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--sizes" => {
                opts.sizes = value("--sizes")
                    .split(',')
                    .map(|s| parse_scale(s).unwrap_or_else(|e| usage(&e)))
                    .collect();
            }
            "--check" => opts.check = true,
            "--warn-only" => opts.warn_only = true,
            "--out" => opts.out = value("--out"),
            "--child" => {
                opts.child = Some(parse_scale(&value("--child")).unwrap_or_else(|e| usage(&e)))
            }
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if opts.sizes.is_empty() {
        usage("--sizes must name at least one size");
    }
    opts
}

/// The `GRAPHPIM_SCALE`-style token for a size — what `parse_scale`
/// accepts and what the report keys on (`LdbcSize::name` is the paper's
/// display label, e.g. `LDBC-1k`).
fn token(size: LdbcSize) -> &'static str {
    match size {
        LdbcSize::K1 => "1k",
        LdbcSize::K10 => "10k",
        LdbcSize::K100 => "100k",
        LdbcSize::M1 => "1m",
    }
}

/// Peak resident set of this process in bytes (`VmHWM`), or 0 when
/// `/proc` is unavailable (non-Linux dev boxes still get the wall curve).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// One size's measurements, as reported by the child process.
struct Point {
    size: LdbcSize,
    vertices: u64,
    edges: u64,
    wall_seconds: f64,
    peak_rss_bytes: u64,
    graphpim_geomean: f64,
}

/// Child mode: run the fig07 sweep at one size and print a single JSON
/// object on stdout.
fn run_child(size: LdbcSize) -> ! {
    let store_dir = std::env::temp_dir().join(format!(
        "graphpim-scale-curve-store-{}-{}",
        std::process::id(),
        token(size)
    ));
    let _ = std::fs::remove_dir_all(&store_dir);
    let start = Instant::now();
    let ctx =
        Experiments::with_cache(size, None).with_trace_store(Some(TraceStore::at(&store_dir)));
    let rows = fig07::run(&ctx);
    let wall = start.elapsed().as_secs_f64();
    let graph = ctx.graph(size);
    let gm = geomean(rows.iter().map(|r| r.graphpim));
    let _ = std::fs::remove_dir_all(&store_dir);
    println!(
        "{{\"size\": \"{}\", \"vertices\": {}, \"edges\": {}, \"wall_seconds\": {:?}, \
         \"peak_rss_bytes\": {}, \"graphpim_geomean\": {:?}}}",
        token(size),
        graph.vertex_count(),
        graph.edge_count(),
        wall,
        peak_rss_bytes(),
        gm
    );
    exit(0)
}

/// Parent mode: spawn one child per size and collect its JSON line.
fn run_parent(sizes: &[LdbcSize]) -> Vec<Point> {
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("[scale_curve] cannot locate own executable: {e}");
        exit(1);
    });
    let mut points = Vec::new();
    for &size in sizes {
        eprintln!("[scale_curve] running {} ...", token(size));
        let output = std::process::Command::new(&exe)
            .args(["--child", token(size)])
            .output()
            .unwrap_or_else(|e| {
                eprintln!("[scale_curve] cannot spawn child for {}: {e}", token(size));
                exit(1);
            });
        eprint!("{}", String::from_utf8_lossy(&output.stderr));
        if !output.status.success() {
            eprintln!(
                "[scale_curve] child for {} failed with {}",
                token(size),
                output.status
            );
            exit(1);
        }
        let stdout = String::from_utf8_lossy(&output.stdout);
        let point = parse_point(size, stdout.trim()).unwrap_or_else(|| {
            eprintln!(
                "[scale_curve] cannot parse child output for {}: {stdout:?}",
                token(size)
            );
            exit(1);
        });
        eprintln!(
            "[scale_curve] {}: {} edges, {:.2}s wall, {:.1} MiB peak RSS",
            token(size),
            point.edges,
            point.wall_seconds,
            point.peak_rss_bytes as f64 / (1024.0 * 1024.0)
        );
        points.push(point);
    }
    points
}

fn parse_point(size: LdbcSize, line: &str) -> Option<Point> {
    let doc = json::parse(line)?;
    let obj = doc.as_object()?;
    let num = |key: &str| obj.get(key).and_then(|v| v.as_f64());
    Some(Point {
        size,
        vertices: num("vertices")? as u64,
        edges: num("edges")? as u64,
        wall_seconds: num("wall_seconds")?,
        peak_rss_bytes: num("peak_rss_bytes")? as u64,
        graphpim_geomean: num("graphpim_geomean")?,
    })
}

fn to_json(points: &[Point]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"graphpim-bench-scale-v1\",\n");
    out.push_str(&format!("  \"growth_factor\": {GROWTH_FACTOR:?},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"size\": \"{}\", \"vertices\": {}, \"edges\": {}, \
             \"wall_seconds\": {:?}, \"peak_rss_bytes\": {}, \"graphpim_geomean\": {:?}}}{comma}\n",
            token(p.size),
            p.vertices,
            p.edges,
            p.wall_seconds,
            p.peak_rss_bytes,
            p.graphpim_geomean
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The asymptotic gate: wall and peak RSS may grow at most
/// [`GROWTH_FACTOR`]× as fast as edges between consecutive sizes.
fn check(points: &[Point]) -> Vec<String> {
    let mut violations = Vec::new();
    for p in points {
        if p.graphpim_geomean.partial_cmp(&0.9) != Some(std::cmp::Ordering::Greater) {
            violations.push(format!(
                "{}: GraphPIM geomean speedup {:.3} is not > 0.9 — the sweep \
                 did not produce sane figure metrics",
                token(p.size),
                p.graphpim_geomean
            ));
        }
    }
    for pair in points.windows(2) {
        let (small, big) = (&pair[0], &pair[1]);
        if big.edges <= small.edges {
            violations.push(format!(
                "sizes not ascending by edge count: {} ({} edges) then {} ({} edges)",
                token(small.size),
                small.edges,
                token(big.size),
                big.edges
            ));
            continue;
        }
        let edge_ratio = big.edges as f64 / small.edges as f64;
        let allowed = GROWTH_FACTOR * edge_ratio;
        if small.wall_seconds >= MIN_GATED_WALL {
            let wall_ratio = big.wall_seconds / small.wall_seconds.max(1e-9);
            if wall_ratio > allowed {
                violations.push(format!(
                    "wall time grows superlinearly {} → {}: {:.2}s → {:.2}s \
                     ({wall_ratio:.1}x for {edge_ratio:.1}x edges; allowed {allowed:.1}x)",
                    token(small.size),
                    token(big.size),
                    small.wall_seconds,
                    big.wall_seconds
                ));
            }
        }
        if small.peak_rss_bytes > 0 && big.peak_rss_bytes > 0 {
            let rss_ratio = big.peak_rss_bytes as f64 / small.peak_rss_bytes as f64;
            if rss_ratio > allowed {
                violations.push(format!(
                    "peak RSS grows superlinearly {} → {}: {} → {} bytes \
                     ({rss_ratio:.1}x for {edge_ratio:.1}x edges; allowed {allowed:.1}x)",
                    token(small.size),
                    token(big.size),
                    small.peak_rss_bytes,
                    big.peak_rss_bytes
                ));
            }
        }
    }
    violations
}

fn main() {
    let opts = parse_args();
    if let Some(size) = opts.child {
        run_child(size);
    }
    let points = run_parent(&opts.sizes);
    if let Err(e) = std::fs::write(&opts.out, to_json(&points)) {
        eprintln!("[scale_curve] cannot write {}: {e}", opts.out);
        exit(1);
    }
    println!("wrote {} ({} sizes)", opts.out, points.len());
    if opts.check {
        let violations = check(&points);
        if violations.is_empty() {
            println!("scale gate passed (growth factor {GROWTH_FACTOR})");
        } else {
            for v in &violations {
                eprintln!("[scale_curve] VIOLATION: {v}");
            }
            eprintln!("[scale_curve] {} violation(s)", violations.len());
            if !opts.warn_only {
                exit(1);
            }
            eprintln!("[scale_curve] --warn-only: exiting 0 despite violations");
        }
    }
}
