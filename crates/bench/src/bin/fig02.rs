//! Regenerates Figure 2 (cycle breakdown and MPKI) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).

use graphpim::experiments::{fig02, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig02] running at scale {} ...", ctx.size());
    let rows = fig02::run(&ctx);
    println!("{}", fig02::table(&rows));
}
