//! Regenerates Figure 2 (cycle breakdown and MPKI) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).
//!
//! Pass `--json` to print the machine-readable figure document
//! instead (identical to `GET /figures/fig02` on `graphpim-serve`).

use graphpim::experiments::{fig02, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig02] running at scale {} ...", ctx.size());
    if graphpim_bench::emit_figure_json("fig02", &ctx) {
        return;
    }
    let rows = fig02::run(&ctx);
    println!("{}", fig02::table(&rows));
}
