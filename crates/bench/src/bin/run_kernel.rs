//! Command-line driver: run any kernel on any input under any
//! configuration and print the metrics — the tool a downstream user
//! reaches for first.
//!
//! ```text
//! run_kernel [KERNEL] [options]
//!
//! KERNEL    BFS | DFS | DC | BC | SSSP | kCore | CComp | PRank |
//!           GCons | GUp | TMorph | TC | Gibbs        (default: BFS)
//!
//! --mode M          baseline | upei | graphpim | all  (default: all)
//! --scale S         1k | 10k | 100k | 1m              (default: 10k)
//! --rmat LOG2V      use an RMAT graph instead of LDBC
//! --edge-list PATH  load a text edge list (src dst [weight] per line)
//! --fus N           atomic FUs per vault              (default: 16)
//! --bw FACTOR       link bandwidth factor             (default: 1.0)
//! --no-fp           disable the FP-extension atomics
//! --hmc-share F     hybrid deployments: property share in HMC (0..1)
//! --seed N          graph generator seed              (default: 7)
//! ```
//!
//! With `GRAPHPIM_TRACE_DIR=<dir>` set, each run additionally writes a
//! JSONL counter trace to `<dir>/<kernel>-<mode>.jsonl`;
//! `GRAPHPIM_PERFETTO_DIR=<dir>` likewise writes a Chrome trace-event
//! file `<kernel>-<mode>.trace.json` for ui.perfetto.dev, and
//! `GRAPHPIM_ATTRIB=1` adds `attrib.*` cycle-attribution counters.

use graphpim::config::{PimMode, SystemConfig};
use graphpim::experiments::pick_root;
use graphpim::system::{Instrumentation, SystemSim};
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_graph::CsrGraph;
use graphpim_workloads::kernels::{by_name, KernelParams};
use std::process::exit;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\nUsage: run_kernel [KERNEL] [--mode M] [--scale S] [--rmat LOG2V]");
    eprintln!("  [--edge-list PATH] [--fus N] [--bw FACTOR] [--no-fp] [--hmc-share F] [--seed N]");
    exit(2)
}

struct Options {
    kernel: String,
    modes: Vec<PimMode>,
    scale: LdbcSize,
    rmat: Option<u32>,
    edge_list: Option<String>,
    fus: usize,
    bw: f64,
    fp: bool,
    hmc_share: f64,
    seed: u64,
}

fn parse_args() -> Options {
    let mut opts = Options {
        kernel: "BFS".to_string(),
        modes: PimMode::ALL.to_vec(),
        scale: LdbcSize::K10,
        rmat: None,
        edge_list: None,
        fus: 16,
        bw: 1.0,
        fp: true,
        hmc_share: 1.0,
        seed: 7,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--mode" => {
                opts.modes = match value("--mode").to_lowercase().as_str() {
                    "baseline" => vec![PimMode::Baseline],
                    "upei" | "u-pei" => vec![PimMode::UPei],
                    "graphpim" => vec![PimMode::GraphPim],
                    "all" => PimMode::ALL.to_vec(),
                    other => usage(&format!("unknown mode {other}")),
                }
            }
            "--scale" => {
                opts.scale = match value("--scale").as_str() {
                    "1k" => LdbcSize::K1,
                    "10k" => LdbcSize::K10,
                    "100k" => LdbcSize::K100,
                    "1m" => LdbcSize::M1,
                    other => usage(&format!("unknown scale {other}")),
                }
            }
            "--rmat" => {
                opts.rmat = Some(
                    value("--rmat")
                        .parse()
                        .unwrap_or_else(|_| usage("--rmat wants log2(vertices)")),
                )
            }
            "--edge-list" => opts.edge_list = Some(value("--edge-list")),
            "--fus" => {
                opts.fus = value("--fus")
                    .parse()
                    .unwrap_or_else(|_| usage("--fus wants an integer"))
            }
            "--bw" => {
                opts.bw = value("--bw")
                    .parse()
                    .unwrap_or_else(|_| usage("--bw wants a float"))
            }
            "--no-fp" => opts.fp = false,
            "--hmc-share" => {
                opts.hmc_share = value("--hmc-share")
                    .parse()
                    .unwrap_or_else(|_| usage("--hmc-share wants a float in [0,1]"))
            }
            "--seed" => {
                opts.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed wants an integer"))
            }
            "--help" | "-h" => usage("help requested"),
            other if !other.starts_with('-') => opts.kernel = other.to_string(),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    opts
}

fn load_graph(opts: &Options) -> CsrGraph {
    if let Some(path) = &opts.edge_list {
        let file = std::fs::File::open(path)
            .unwrap_or_else(|e| usage(&format!("cannot open {path}: {e}")));
        return graphpim_graph::io::read_edge_list(std::io::BufReader::new(file))
            .unwrap_or_else(|e| usage(&format!("cannot parse {path}: {e}")));
    }
    if let Some(scale) = opts.rmat {
        return GraphSpec::rmat(scale, 8).seed(opts.seed).build();
    }
    let spec = GraphSpec::ldbc(opts.scale).seed(opts.seed);
    if opts.kernel == "SSSP" {
        spec.weighted().build()
    } else {
        spec.build()
    }
}

fn main() {
    let opts = parse_args();
    let graph = load_graph(&opts);
    println!(
        "graph: {} vertices, {} edges | kernel: {}",
        graph.vertex_count(),
        graph.edge_count(),
        opts.kernel
    );

    let mut params = KernelParams::scaled_for(graph.vertex_count());
    params.root = pick_root(&graph);
    let mut baseline_cycles = None;
    for &mode in &opts.modes {
        let mut kernel = by_name(&opts.kernel, params)
            .unwrap_or_else(|| usage(&format!("unknown kernel {}", opts.kernel)));
        let mut config = SystemConfig::hpca(mode)
            .with_fus_per_vault(opts.fus)
            .with_link_bandwidth_factor(opts.bw)
            .with_hmc_property_fraction(opts.hmc_share);
        if !opts.fp {
            config = config.without_fp_extension();
        }
        let label = format!("{}-{}", opts.kernel, mode.label());
        let instr = Instrumentation::from_env(&label);
        let m = SystemSim::run_kernel_instrumented(kernel.as_mut(), &graph, &config, instr);
        if m.trace_export_failed {
            eprintln!("warning: trace export failed for run {label} (see preceding error)");
        }
        if mode == PimMode::Baseline {
            baseline_cycles = Some(m.total_cycles);
        }
        let speedup = baseline_cycles
            .map(|b| format!(" ({:.2}x)", b / m.total_cycles))
            .unwrap_or_default();
        println!(
            "{:>9}: {:>14.0} cycles{speedup} | IPC {:.3} | L3 MPKI {:>6.1} | \
             candidates {:>9} (miss {:>3.0}%) | offloaded {:>9} | flits {:>10}",
            mode.label(),
            m.total_cycles,
            m.ipc(),
            m.l3_mpki(),
            m.offload_candidates,
            m.candidate_miss_rate() * 100.0,
            m.offloaded_atomics,
            m.total_flits(),
        );
    }
}
