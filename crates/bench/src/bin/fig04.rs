//! Regenerates Figure 4 (atomic instruction overhead) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).
//!
//! Pass `--json` to print the machine-readable figure document
//! instead (identical to `GET /figures/fig04` on `graphpim-serve`).

use graphpim::experiments::{fig04, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig04] running at scale {} ...", ctx.size());
    if graphpim_bench::emit_figure_json("fig04", &ctx) {
        return;
    }
    let rows = fig04::run(&ctx);
    println!("{}", fig04::table(&rows));
}
