//! Regenerates Figure 4 (atomic instruction overhead) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).

use graphpim::experiments::{fig04, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig04] running at scale {} ...", ctx.size());
    let rows = fig04::run(&ctx);
    println!("{}", fig04::table(&rows));
}
