//! Regenerates Figure 12 (bandwidth consumption) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).
//!
//! Pass `--json` to print the machine-readable figure document
//! instead (identical to `GET /figures/fig12` on `graphpim-serve`).

use graphpim::experiments::{fig12, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig12] running at scale {} ...", ctx.size());
    if graphpim_bench::emit_figure_json("fig12", &ctx) {
        return;
    }
    let rows = fig12::run(&ctx);
    println!("{}", fig12::table(&rows));
}
