//! Regenerates Figure 12 (bandwidth consumption) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).

use graphpim::experiments::{fig12, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig12] running at scale {} ...", ctx.size());
    let rows = fig12::run(&ctx);
    println!("{}", fig12::table(&rows));
}
