//! Regenerates Figure 10 (offload-candidate miss rate) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).
//!
//! Pass `--json` to print the machine-readable figure document
//! instead (identical to `GET /figures/fig10` on `graphpim-serve`).

use graphpim::experiments::{fig10, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig10] running at scale {} ...", ctx.size());
    if graphpim_bench::emit_figure_json("fig10", &ctx) {
        return;
    }
    let rows = fig10::run(&ctx);
    println!("{}", fig10::table(&rows));
}
