//! Regenerates Figure 10 (offload-candidate miss rate) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).

use graphpim::experiments::{fig10, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig10] running at scale {} ...", ctx.size());
    let rows = fig10::run(&ctx);
    println!("{}", fig10::table(&rows));
}
