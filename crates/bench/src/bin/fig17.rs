//! Regenerates Figure 17 and Table VIII (real-world applications).
//!
//! Stand-in graph scale: `GRAPHPIM_APP_SCALE` = log2 vertices (default 13).

use graphpim::experiments::fig17;

fn main() {
    eprintln!(
        "[fig17] running FD and RS at RMAT scale {} ...",
        fig17::app_scale()
    );
    let results = fig17::run();
    println!("{}", fig17::table8(&results));
    println!("{}", fig17::table17(&results));
}
