//! Regenerates Figure 16 (analytical model validation) of the paper.
//!
//! Pass `--json` to print the machine-readable figure document
//! instead (identical to `GET /figures/fig16` on `graphpim-serve`).

use graphpim::experiments::{fig16, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig16] running at scale {} ...", ctx.size());
    if graphpim_bench::emit_figure_json("fig16", &ctx) {
        return;
    }
    let rows = fig16::run(&ctx);
    println!("{}", fig16::table(&rows));
    println!(
        "Mean relative error: {:.2}% (paper: 7.72%)",
        fig16::mean_error(&rows) * 100.0
    );
}
