//! Runs the ablation studies (design choices the paper discusses in
//! Sections III-B/III-C but does not plot).

use graphpim::experiments::{ablation, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[ablation] running at scale {} ...", ctx.size());
    let rows = ablation::run(&ctx);
    println!("{}", ablation::table(&rows));
}
