//! Runs the entire harness: every table and figure, in paper order.
//!
//! `GRAPHPIM_SCALE` selects the LDBC input (default 10k); runs share one
//! context, so the three-configuration sweep is simulated once.

use graphpim::experiments::*;

fn main() {
    let mut ctx = Experiments::from_env();
    eprintln!("[all] scale {}", ctx.size());

    println!("{}", tables::table1());
    println!("{}", tables::table2());
    println!("{}", tables::table3());
    println!("{}", tables::table4());
    println!("{}", tables::table5());
    println!("{}", tables::table6(false));

    println!("{}", fig01::table(&fig01::run(&mut ctx)));
    println!("{}", fig02::table(&fig02::run(&mut ctx)));
    println!("{}", fig04::table(&fig04::run(&mut ctx)));
    println!("{}", fig07::table(&fig07::run(&mut ctx)));
    println!("{}", fig09::table(&fig09::run(&mut ctx)));
    println!("{}", fig10::table(&fig10::run(&mut ctx)));
    println!("{}", fig11::table(&fig11::run(&mut ctx)));
    println!("{}", fig12::table(&fig12::run(&mut ctx)));
    println!("{}", fig13::table(&fig13::run(&mut ctx)));
    let cells = fig14::run(&mut ctx);
    println!("{}", fig14::table_a(&cells));
    println!("{}", fig14::table_b(&cells));
    let bars = fig15::run(&mut ctx);
    println!("{}", fig15::table(&bars));
    println!(
        "Average normalized GraphPIM uncore energy: {:.2} (paper: 0.63)\n",
        fig15::average_graphpim_energy(&bars)
    );
    let rows = fig16::run(&mut ctx);
    println!("{}", fig16::table(&rows));
    println!(
        "Mean relative error: {:.2}% (paper: 7.72%)\n",
        fig16::mean_error(&rows) * 100.0
    );
    let apps = fig17::run();
    println!("{}", fig17::table8(&apps));
    println!("{}", fig17::table17(&apps));

    println!("{}", ablation::table(&ablation::run(&mut ctx)));
    println!(
        "{}",
        hybrid::table(&hybrid::run(&mut ctx, &["BFS", "DC", "CComp"]))
    );
}
