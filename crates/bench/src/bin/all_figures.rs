//! Runs the entire harness: every table and figure, in paper order.
//!
//! `GRAPHPIM_SCALE` selects the LDBC input (default 10k); runs share one
//! context, so the three-configuration sweep is simulated once. The full
//! run set is prewarmed across a worker pool up front
//! (`GRAPHPIM_THREADS` controls the width), and finished runs persist in
//! the on-disk cache (`GRAPHPIM_CACHE_DIR` / `GRAPHPIM_NO_CACHE`), so a
//! warm second invocation executes no new simulations.
//!
//! The instruction-trace store (`GRAPHPIM_TRACE_STORE`, on by default)
//! additionally captures each distinct `(kernel, graph, threads)`
//! workload's trace once and replays it for every sweep point, so wall
//! time scales with the number of distinct workloads rather than the
//! number of sweep points. `GRAPHPIM_NO_TRACE_STORE=1` disables it;
//! `GRAPHPIM_STORE_STATS_JSON=<file>` dumps the capture/replay counters.
//!
//! Observability: `GRAPHPIM_TRACE_DIR=<dir>` writes one JSONL counter
//! trace per fresh simulation, `GRAPHPIM_PERFETTO_DIR=<dir>` one Chrome
//! trace-event file for ui.perfetto.dev, and `GRAPHPIM_ATTRIB=1` adds
//! `attrib.*` cycle-attribution counters; an engine-profiling summary (per-run wall
//! time, disk-cache outcomes, pool utilization) goes to stderr at the
//! end, and `GRAPHPIM_PROFILE_JSON=<file>` dumps it as JSON.

use graphpim::experiments::*;

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[all] scale {}", ctx.size());

    println!("{}", tables::table1());
    println!("{}", tables::table2());
    println!("{}", tables::table3());
    println!("{}", tables::table4());
    println!("{}", tables::table5());
    println!("{}", tables::table6(false));

    // One global prewarm over every figure's run set: distinct runs fan
    // out across the pool, shared runs are simulated exactly once.
    let mut keys = Vec::new();
    keys.extend(fig01::keys(&ctx));
    keys.extend(fig02::keys(&ctx));
    keys.extend(fig04::keys(&ctx));
    keys.extend(fig07::keys(&ctx));
    keys.extend(fig09::keys(&ctx));
    keys.extend(fig10::keys(&ctx));
    keys.extend(fig11::keys(&ctx));
    keys.extend(fig12::keys(&ctx));
    keys.extend(fig13::keys(&ctx));
    keys.extend(fig14::keys(&ctx));
    keys.extend(fig15::keys(&ctx));
    keys.extend(fig16::keys(&ctx));
    keys.extend(hybrid::keys(&ctx, &["BFS", "DC", "CComp"]));
    ctx.prewarm(keys);

    println!("{}", fig01::table(&fig01::run(&ctx)));
    println!("{}", fig02::table(&fig02::run(&ctx)));
    println!("{}", fig04::table(&fig04::run(&ctx)));
    println!("{}", fig07::table(&fig07::run(&ctx)));
    println!("{}", fig09::table(&fig09::run(&ctx)));
    println!("{}", fig10::table(&fig10::run(&ctx)));
    println!("{}", fig11::table(&fig11::run(&ctx)));
    println!("{}", fig12::table(&fig12::run(&ctx)));
    println!("{}", fig13::table(&fig13::run(&ctx)));
    let cells = fig14::run(&ctx);
    println!("{}", fig14::table_a(&cells));
    println!("{}", fig14::table_b(&cells));
    let bars = fig15::run(&ctx);
    println!("{}", fig15::table(&bars));
    println!(
        "Average normalized GraphPIM uncore energy: {:.2} (paper: 0.63)\n",
        fig15::average_graphpim_energy(&bars)
    );
    let rows = fig16::run(&ctx);
    println!("{}", fig16::table(&rows));
    println!(
        "Mean relative error: {:.2}% (paper: 7.72%)\n",
        fig16::mean_error(&rows) * 100.0
    );
    let apps = fig17::run();
    println!("{}", fig17::table8(&apps));
    println!("{}", fig17::table17(&apps));

    println!("{}", ablation::table(&ablation::run(&ctx)));
    println!(
        "{}",
        hybrid::table(&hybrid::run(&ctx, &["BFS", "DC", "CComp"]))
    );

    eprintln!(
        "[all] simulations executed: {}, disk-cache hits: {}, distinct runs: {}",
        ctx.simulations_executed(),
        ctx.disk_cache_hits(),
        ctx.cached_runs()
    );

    // Engine profiling summary (stderr, so figure output stays clean).
    let profile = ctx.profile();
    eprint!("{}", profile.summary());
    let export_failures = profile.trace_store().export_failures;
    if export_failures > 0 {
        eprintln!(
            "[all] warning: {export_failures} run(s) failed to export traces \
             (failing paths in the preceding [trace]/[perfetto] errors)"
        );
    }
    if let Some(path) = std::env::var_os("GRAPHPIM_PROFILE_JSON") {
        match std::fs::write(&path, profile.to_json()) {
            Ok(()) => eprintln!("[profile] written to {}", path.to_string_lossy()),
            Err(e) => eprintln!("[profile] cannot write {}: {e}", path.to_string_lossy()),
        }
    }
    graphpim_bench::report_store_stats(&ctx);
}
