//! Regenerates Figure 7 (speedup over baseline) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).

use graphpim::experiments::{fig07, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig07] running at scale {} ...", ctx.size());
    let rows = fig07::run(&ctx);
    println!("{}", fig07::table(&rows));
}
