//! Regenerates Figure 7 (speedup over baseline) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).
//! `GRAPHPIM_STORE_STATS_JSON=<file>` dumps the trace-store counters
//! (captures/replays/hits) after the run.
//!
//! Pass `--json` to print the machine-readable figure document
//! instead (identical to `GET /figures/fig07` on `graphpim-serve`).

use graphpim::experiments::{fig07, Experiments};
use graphpim_bench::report_store_stats;

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig07] running at scale {} ...", ctx.size());
    if graphpim_bench::emit_figure_json("fig07", &ctx) {
        report_store_stats(&ctx);
        return;
    }
    let rows = fig07::run(&ctx);
    println!("{}", fig07::table(&rows));
    report_store_stats(&ctx);
}
