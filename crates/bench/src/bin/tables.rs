//! Prints Tables I–VI of the paper from the implementation itself.

use graphpim::experiments::tables;

fn main() {
    println!("{}", tables::table1());
    println!("{}", tables::table2());
    println!("{}", tables::table3());
    println!("{}", tables::table4());
    println!("{}", tables::table5());
    // Pass GRAPHPIM_TABLE6_FULL=1 to also generate the LDBC-1M row.
    let full = std::env::var("GRAPHPIM_TABLE6_FULL").is_ok();
    println!("{}", tables::table6(full));
}
