//! Regenerates Figure 11 (FU-count sensitivity) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).
//!
//! Pass `--json` to print the machine-readable figure document
//! instead (identical to `GET /figures/fig11` on `graphpim-serve`).

use graphpim::experiments::{fig11, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig11] running at scale {} ...", ctx.size());
    if graphpim_bench::emit_figure_json("fig11", &ctx) {
        return;
    }
    let rows = fig11::run(&ctx);
    println!("{}", fig11::table(&rows));
}
