//! Regenerates Figure 9 (execution-time breakdown) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).

use graphpim::experiments::{fig09, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig09] running at scale {} ...", ctx.size());
    let rows = fig09::run(&ctx);
    println!("{}", fig09::table(&rows));
}
