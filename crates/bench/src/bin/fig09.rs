//! Regenerates Figure 9 (execution-time breakdown) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).
//!
//! Pass `--json` to print the machine-readable figure document
//! instead (identical to `GET /figures/fig09` on `graphpim-serve`).

use graphpim::experiments::{fig09, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig09] running at scale {} ...", ctx.size());
    if graphpim_bench::emit_figure_json("fig09", &ctx) {
        return;
    }
    let rows = fig09::run(&ctx);
    println!("{}", fig09::table(&rows));
}
