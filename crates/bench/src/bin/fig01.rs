//! Regenerates Figure 1 (workload IPC) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).
//!
//! Pass `--json` to print the machine-readable figure document
//! instead (identical to `GET /figures/fig01` on `graphpim-serve`).

use graphpim::experiments::{fig01, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig01] running at scale {} ...", ctx.size());
    if graphpim_bench::emit_figure_json("fig01", &ctx) {
        return;
    }
    let rows = fig01::run(&ctx);
    println!("{}", fig01::table(&rows));
}
