//! Regenerates Figure 14 (graph-size sensitivity) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE` bounds the largest size swept (default 10k).
//!
//! Pass `--json` to print the machine-readable figure document
//! instead (identical to `GET /figures/fig14` on `graphpim-serve`).

use graphpim::experiments::{fig14, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig14] sweeping sizes up to {} ...", ctx.size());
    if graphpim_bench::emit_figure_json("fig14", &ctx) {
        return;
    }
    let cells = fig14::run(&ctx);
    println!("{}", fig14::table_a(&cells));
    println!("{}", fig14::table_b(&cells));
}
