//! Latency/throughput benchmark for `graphpim-serve`.
//!
//! Boots the service in-process on an ephemeral port, prewarms the
//! Figure 7 sweep so every benchmarked request is a pure cache hit,
//! then hammers `GET /figures/fig07` from `--clients` concurrent
//! connections for `--seconds` and reports exact (sorted-sample)
//! latency percentiles.
//!
//! ```text
//! serve_bench [--clients N] [--seconds S] [--out PATH]
//!
//! --clients N    concurrent client threads      (default: 16)
//! --seconds S    measurement window in seconds  (default: 5)
//! --out PATH     write the JSON report here too (default: stdout only)
//! ```
//!
//! The report (`schema: graphpim-serve-bench-v1`) carries request and
//! error counts, aggregate throughput, and latency in milliseconds
//! (mean/p50/p90/p99/max). Latencies are measured per request around
//! connect + request + full response read — the client's view, not the
//! handler's — so they include connection setup, which is the honest
//! number for a `Connection: close` protocol.
//!
//! Wall-clock numbers are machine-dependent and never gated; CI uploads
//! the report as an artifact for trending. The committed snapshot lives
//! at `crates/bench/BENCH_SERVE.json`.

use graphpim::experiments::{figjson, Experiments};
use graphpim_serve::http::client;
use graphpim_serve::{ServeConfig, ServerHandle};
use std::io::Write;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\nUsage: serve_bench [--clients N] [--seconds S] [--out PATH]");
    exit(2)
}

struct Options {
    clients: usize,
    seconds: f64,
    out: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        clients: 16,
        seconds: 5.0,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--clients" => {
                opts.clients = value("--clients")
                    .parse()
                    .unwrap_or_else(|_| usage("--clients must be a positive integer"));
            }
            "--seconds" => {
                opts.seconds = value("--seconds")
                    .parse()
                    .unwrap_or_else(|_| usage("--seconds must be a number"));
            }
            "--out" => opts.out = Some(value("--out")),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if opts.clients == 0 {
        usage("--clients must be at least 1");
    }
    opts
}

/// Per-client tally: latencies of successful requests plus error count.
struct ClientResult {
    latencies_us: Vec<u64>,
    errors: u64,
}

fn client_loop(addr: &str, stop: &AtomicBool) -> ClientResult {
    let mut result = ClientResult {
        latencies_us: Vec::with_capacity(4096),
        errors: 0,
    };
    while !stop.load(Ordering::Relaxed) {
        let begin = Instant::now();
        match client::get(addr, "/figures/fig07") {
            Ok((200, body)) if !body.is_empty() => {
                result.latencies_us.push(begin.elapsed().as_micros() as u64);
            }
            _ => result.errors += 1,
        }
    }
    result
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64 / 1000.0
}

fn boot(clients: usize) -> (ServerHandle, Arc<Experiments>) {
    let ctx = Arc::new(Experiments::from_env());
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        // Enough HTTP threads that the measured ceiling is the handler,
        // not the benchmark harness queueing on its own service.
        http_threads: clients.max(4),
        ..ServeConfig::default()
    };
    let handle = graphpim_serve::start(cfg, Arc::clone(&ctx))
        .unwrap_or_else(|e| panic!("cannot boot service: {e}"));
    (handle, ctx)
}

fn main() {
    let opts = parse_args();
    let (handle, ctx) = boot(opts.clients);
    let addr = handle.addr().to_string();
    let scale = ctx.size();

    eprintln!("[serve_bench] booted on {addr} at scale {scale}; prewarming fig07 ...");
    let prewarm_begin = Instant::now();
    let keys = figjson::figure_keys("fig07", &ctx).expect("fig07 is a served figure");
    ctx.prewarm(keys);
    let prewarm_seconds = prewarm_begin.elapsed().as_secs_f64();
    // The benchmarked request must be a pure cache hit.
    let (status, reference) = client::get(&addr, "/figures/fig07").expect("warm-up request");
    assert_eq!(status, 200, "fig07 must serve from cache after prewarm");
    assert!(!reference.is_empty());

    eprintln!(
        "[serve_bench] prewarmed in {prewarm_seconds:.1}s; measuring {} clients x {:.0}s ...",
        opts.clients, opts.seconds
    );
    let stop = Arc::new(AtomicBool::new(false));
    let bench_begin = Instant::now();
    let workers: Vec<_> = (0..opts.clients)
        .map(|_| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || client_loop(&addr, &stop))
        })
        .collect();
    std::thread::sleep(Duration::from_secs_f64(opts.seconds));
    stop.store(true, Ordering::Relaxed);
    let results: Vec<ClientResult> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread panicked"))
        .collect();
    let elapsed = bench_begin.elapsed().as_secs_f64();
    handle.shutdown();

    let mut latencies: Vec<u64> = results
        .iter()
        .flat_map(|r| r.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let errors: u64 = results.iter().map(|r| r.errors).sum();
    let requests = latencies.len() as u64;
    let mean_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1000.0
    };
    let max_ms = latencies.last().map_or(0.0, |&us| us as f64 / 1000.0);

    let report = format!(
        "{{\n  \"schema\": \"graphpim-serve-bench-v1\",\n  \"scale\": \"{scale}\",\n  \
         \"clients\": {clients},\n  \"seconds\": {elapsed:?},\n  \
         \"requests\": {requests},\n  \"errors\": {errors},\n  \
         \"throughput_rps\": {rps:?},\n  \"latency_ms\": {{\"mean\": {mean:?}, \
         \"p50\": {p50:?}, \"p90\": {p90:?}, \"p99\": {p99:?}, \"max\": {max:?}}}\n}}",
        clients = opts.clients,
        rps = requests as f64 / elapsed.max(1e-9),
        mean = mean_ms,
        p50 = percentile(&latencies, 0.50),
        p90 = percentile(&latencies, 0.90),
        p99 = percentile(&latencies, 0.99),
        max = max_ms,
    );
    println!("{report}");
    if let Some(path) = &opts.out {
        let mut file =
            std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        writeln!(file, "{report}").expect("write report");
        eprintln!("[serve_bench] report written to {path}");
    }
    if errors > 0 {
        eprintln!("[serve_bench] WARNING: {errors} failed requests");
        exit(1);
    }
}
