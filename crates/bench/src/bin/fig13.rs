//! Regenerates Figure 13 (link-bandwidth sensitivity) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).

use graphpim::experiments::{fig13, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig13] running at scale {} ...", ctx.size());
    let rows = fig13::run(&ctx);
    println!("{}", fig13::table(&rows));
}
