//! Regenerates Figure 13 (link-bandwidth sensitivity) of the paper.
//!
//! Scale: `GRAPHPIM_SCALE=1k|10k|100k|1m` (default 10k).
//!
//! Pass `--json` to print the machine-readable figure document
//! instead (identical to `GET /figures/fig13` on `graphpim-serve`).

use graphpim::experiments::{fig13, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig13] running at scale {} ...", ctx.size());
    if graphpim_bench::emit_figure_json("fig13", &ctx) {
        return;
    }
    let rows = fig13::run(&ctx);
    println!("{}", fig13::table(&rows));
}
