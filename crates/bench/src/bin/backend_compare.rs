//! Cross-backend comparison driver: the fig17-style "which workloads win
//! where" report across memory backends (single-cube HMC, multi-cube
//! chain, UPMEM-style DPU).
//!
//! ```text
//! backend_compare [--out PATH]
//!
//! --out PATH   also write the machine-readable JSON report to PATH
//! ```
//!
//! Scale comes from `GRAPHPIM_SCALE` (default 1k — the matrix is
//! backends × kernels × 2 modes, so it is several fig07s of work). CI
//! runs this at 1k and uploads the JSON artifact.

use graphpim::experiments::{backends, parse_scale};
use graphpim_graph::generate::LdbcSize;
use std::process::exit;
use std::time::Instant;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\nUsage: backend_compare [--out PATH]");
    exit(2)
}

fn main() {
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(args.next().unwrap_or_else(|| usage("--out needs a value"))),
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    let size = match std::env::var("GRAPHPIM_SCALE") {
        Err(_) => LdbcSize::K1,
        Ok(v) => parse_scale(&v).unwrap_or_else(|e| usage(&e)),
    };

    eprintln!(
        "[backend_compare] sweeping 3 backends at {} ...",
        size.name()
    );
    let start = Instant::now();
    let reports = backends::run(size);
    eprintln!(
        "[backend_compare] {} runs in {:.1} s",
        reports.iter().map(|r| r.rows.len() * 2).sum::<usize>(),
        start.elapsed().as_secs_f64()
    );

    print!("{}", backends::render_text(size, &reports));

    if let Some(path) = out {
        let json = backends::report_json(size, &reports);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("[backend_compare] cannot write {path}: {e}");
            exit(1);
        }
        eprintln!("[backend_compare] wrote {path}");
    }
}
