//! Hybrid HMC + DRAM deployment sweep (the Section III-B discussion the
//! paper describes but does not plot).

use graphpim::experiments::{hybrid, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[hybrid] running at scale {} ...", ctx.size());
    let points = hybrid::run(&ctx, &["BFS", "DC", "CComp"]);
    println!("{}", hybrid::table(&points));
}
