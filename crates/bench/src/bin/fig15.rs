//! Regenerates Figure 15 (uncore energy breakdown) of the paper.
//!
//! Pass `--json` to print the machine-readable figure document
//! instead (identical to `GET /figures/fig15` on `graphpim-serve`).

use graphpim::experiments::{fig15, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig15] running at scale {} ...", ctx.size());
    if graphpim_bench::emit_figure_json("fig15", &ctx) {
        return;
    }
    let bars = fig15::run(&ctx);
    println!("{}", fig15::table(&bars));
    println!(
        "Average normalized GraphPIM uncore energy: {:.2} (paper: 0.63)",
        fig15::average_graphpim_energy(&bars)
    );
}
