//! Regenerates Figure 15 (uncore energy breakdown) of the paper.

use graphpim::experiments::{fig15, Experiments};

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[fig15] running at scale {} ...", ctx.size());
    let bars = fig15::run(&ctx);
    println!("{}", fig15::table(&bars));
    println!(
        "Average normalized GraphPIM uncore energy: {:.2} (paper: 0.63)",
        fig15::average_graphpim_energy(&bars)
    );
}
