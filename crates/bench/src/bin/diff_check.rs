//! Differential validation gate: simulator vs analytical model.
//!
//! Runs every evaluation kernel through both the interval simulator and
//! the Equation 1–2 analytic model, prints the per-kernel comparison,
//! writes a JSON report (`GRAPHPIM_DIFF_REPORT`, default
//! `diff-report.json`), and exits non-zero if the two diverge beyond the
//! documented tolerances. See `VALIDATION.md`.

use graphpim::experiments::Experiments;
use graphpim::validate::differential;
use graphpim_bench::report_store_stats;
use std::path::PathBuf;

fn main() {
    let ctx = Experiments::from_env();
    eprintln!("[diff_check] running at scale {} ...", ctx.size());
    let report = differential::run(&ctx);
    println!("{}", differential::table(&report));
    println!(
        "Mean relative error (model scope): {:.2}% (tolerance {:.0}%; paper: 7.72%)",
        report.mean_error * 100.0,
        report.tolerance.mean * 100.0
    );

    let path = std::env::var_os("GRAPHPIM_DIFF_REPORT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("diff-report.json"));
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => eprintln!("[diff_check] report written to {}", path.display()),
        Err(e) => eprintln!("[diff_check] failed to write {}: {e}", path.display()),
    }
    report_store_stats(&ctx);

    if !report.passed() {
        eprintln!("[diff_check] FAILED:");
        for f in &report.failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    eprintln!("[diff_check] all kernels within tolerance");
}
