//! Bench regression gate: runs the key figure drivers, writes a
//! machine-readable `BENCH.json`, and (with `--check`) compares the
//! model metrics against a committed baseline.
//!
//! ```text
//! bench_report [--check] [--warn-only] [--out PATH] [--baseline PATH]
//!
//! --check           compare metrics against the baseline and fail on drift
//! --warn-only       with --check: report violations but exit 0
//! --out PATH        where to write the report        (default: BENCH.json)
//! --baseline PATH   baseline to check against
//!                   (default: crates/bench/baseline.json)
//! ```
//!
//! The report carries two sections:
//!
//! * `wall_seconds.*` — per-driver wall time. Reported for trending,
//!   **never gated**: wall time depends on the machine, cache state, and
//!   thread count.
//! * `metrics.*` — model outputs (Figure 7 speedups, Figure 1 baseline
//!   IPC, GraphPIM offload fractions). The simulator is deterministic,
//!   so `--check` gates these at a relative tolerance of `1e-6` — tight
//!   enough that any model change trips the gate, loose enough to absorb
//!   float formatting round-trips.
//!
//! The scale is part of the report (`GRAPHPIM_SCALE`, default 10k); a
//! `--check` against a baseline recorded at a different scale is an
//! error, not a tolerance question. CI runs this at 1k scale warn-only
//! against `crates/bench/baseline.json`.

use graphpim::config::PimMode;
use graphpim::experiments::cache::json;
use graphpim::experiments::{fig01, fig07, Experiments, EVAL_KERNELS};
use std::process::exit;
use std::time::Instant;

/// Relative tolerance for gated metrics. The simulator is deterministic;
/// this only absorbs decimal round-trips through the JSON report.
const CHECK_TOLERANCE: f64 = 1e-6;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\nUsage: bench_report [--check] [--warn-only] [--out PATH] [--baseline PATH]");
    exit(2)
}

struct Options {
    check: bool,
    warn_only: bool,
    out: String,
    baseline: String,
}

fn parse_args() -> Options {
    let mut opts = Options {
        check: false,
        warn_only: false,
        out: "BENCH.json".to_string(),
        baseline: concat!(env!("CARGO_MANIFEST_DIR"), "/baseline.json").to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--check" => opts.check = true,
            "--warn-only" => opts.warn_only = true,
            "--out" => opts.out = value("--out"),
            "--baseline" => opts.baseline = value("--baseline"),
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    opts
}

/// One timed driver pass plus the flat metric list it contributes.
struct Report {
    scale: String,
    wall: Vec<(String, f64)>,
    metrics: Vec<(String, f64)>,
}

fn collect(ctx: &Experiments) -> Report {
    let mut wall = Vec::new();
    let mut metrics = Vec::new();

    // Figure 7: the headline speedups (plus the geomean "Average" row).
    let start = Instant::now();
    let rows = fig07::run(ctx);
    wall.push(("fig07".to_string(), start.elapsed().as_secs_f64()));
    for row in &rows {
        metrics.push((format!("speedup.upei.{}", row.workload), row.upei));
        metrics.push((format!("speedup.graphpim.{}", row.workload), row.graphpim));
    }

    // Figure 1: baseline IPC across the full kernel set.
    let start = Instant::now();
    let rows = fig01::run(ctx);
    wall.push(("fig01".to_string(), start.elapsed().as_secs_f64()));
    for row in &rows {
        metrics.push((format!("ipc.baseline.{}", row.workload), row.ipc));
    }

    // Offload fractions under GraphPIM (memoized — reuses the fig07 runs).
    let start = Instant::now();
    for &kernel in &EVAL_KERNELS {
        let m = ctx.metrics(kernel, PimMode::GraphPim);
        let fraction = m.offloaded_atomics as f64 / (m.offload_candidates.max(1)) as f64;
        metrics.push((format!("offload_fraction.graphpim.{kernel}"), fraction));
    }
    wall.push(("offload".to_string(), start.elapsed().as_secs_f64()));

    Report {
        scale: ctx.size().to_string(),
        wall,
        metrics,
    }
}

/// Serializes the report. `{:?}` floats round-trip exactly through the
/// raw-token JSON reader, so `--check` sees bit-identical values.
fn to_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"graphpim-bench-report-v1\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", report.scale));
    out.push_str("  \"wall_seconds\": {\n");
    for (i, (key, value)) in report.wall.iter().enumerate() {
        let comma = if i + 1 < report.wall.len() { "," } else { "" };
        out.push_str(&format!("    \"{key}\": {value:?}{comma}\n"));
    }
    out.push_str("  },\n  \"metrics\": {\n");
    for (i, (key, value)) in report.metrics.iter().enumerate() {
        let comma = if i + 1 < report.metrics.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!("    \"{key}\": {value:?}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Compares `report` against the baseline file. Returns the violation
/// messages (empty = pass).
fn check(report: &Report, baseline_path: &str) -> Vec<String> {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => return vec![format!("cannot read baseline {baseline_path}: {e}")],
    };
    let Some(doc) = json::parse(&text) else {
        return vec![format!("baseline {baseline_path} is not valid JSON")];
    };
    let Some(obj) = doc.as_object() else {
        return vec![format!("baseline {baseline_path} is not a JSON object")];
    };
    let mut violations = Vec::new();
    match obj.get("scale").and_then(|v| v.as_str()) {
        Some(scale) if scale == report.scale => {}
        Some(scale) => {
            return vec![format!(
                "scale mismatch: baseline recorded at {scale}, this run is {} \
                 (set GRAPHPIM_SCALE to match or regenerate the baseline)",
                report.scale
            )]
        }
        None => violations.push("baseline has no \"scale\" field".to_string()),
    }
    let expected: Vec<(&str, f64)> = match obj.get("metrics") {
        Some(json::Value::Object(fields)) => fields
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|n| (k.as_str(), n)))
            .collect(),
        _ => {
            violations.push("baseline has no \"metrics\" object".to_string());
            Vec::new()
        }
    };
    for (key, want) in expected {
        match report.metrics.iter().find(|(k, _)| k == key) {
            None => violations.push(format!("metric {key} missing from this run")),
            Some((_, got)) => {
                let scale = want.abs().max(got.abs()).max(1.0);
                if (got - want).abs() > CHECK_TOLERANCE * scale {
                    violations.push(format!(
                        "metric {key} drifted: baseline {want:?}, got {got:?} \
                         (rel. err {:.2e}, tolerance {CHECK_TOLERANCE:.0e})",
                        (got - want).abs() / scale
                    ));
                }
            }
        }
    }
    violations
}

fn main() {
    let opts = parse_args();
    let ctx = Experiments::from_env();
    eprintln!("[bench_report] scale {}", ctx.size());

    let report = collect(&ctx);
    for (key, seconds) in &report.wall {
        eprintln!("[bench_report] {key}: {seconds:.2}s wall");
    }
    if let Err(e) = std::fs::write(&opts.out, to_json(&report)) {
        eprintln!("[bench_report] cannot write {}: {e}", opts.out);
        exit(1);
    }
    println!(
        "wrote {} ({} metrics, {} drivers timed)",
        opts.out,
        report.metrics.len(),
        report.wall.len()
    );

    if opts.check {
        let violations = check(&report, &opts.baseline);
        if violations.is_empty() {
            println!(
                "check passed against {} (tolerance {CHECK_TOLERANCE:.0e})",
                opts.baseline
            );
        } else {
            for v in &violations {
                eprintln!("[bench_report] VIOLATION: {v}");
            }
            eprintln!(
                "[bench_report] {} violation(s) against {}",
                violations.len(),
                opts.baseline
            );
            if !opts.warn_only {
                exit(1);
            }
            eprintln!("[bench_report] --warn-only: exiting 0 despite violations");
        }
    }
}
