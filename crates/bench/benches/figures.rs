//! Criterion benches: one per paper table/figure, each timing a
//! representative slice of the harness that regenerates it (single kernel,
//! smoke scale) so `cargo bench` finishes quickly. The full figures are
//! produced by the `fig*` binaries; these benches track the cost of the
//! underlying simulation paths and guard against regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use graphpim::config::PimMode;
use graphpim::experiments::{tables, Experiments};
use graphpim_graph::generate::LdbcSize;

fn ctx() -> Experiments {
    // No disk cache: these benches time the cold simulation path, not a
    // cache replay.
    Experiments::with_cache(LdbcSize::K1, None)
}

/// One (kernel × mode) simulation at smoke scale — the unit every figure
/// is assembled from.
fn bench_unit(c: &mut Criterion, group: &str, kernel: &'static str, mode: PimMode) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter_batched(
            ctx,
            |ctx| criterion::black_box(ctx.metrics(kernel, mode)),
            criterion::BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables_1_to_6");
    group.sample_size(10);
    group.bench_function("render", |b| {
        b.iter(|| {
            criterion::black_box((
                tables::table1(),
                tables::table2(),
                tables::table3(),
                tables::table4(),
                tables::table5(),
                tables::table6(false),
            ))
        })
    });
    group.finish();
}

fn bench_fig01(c: &mut Criterion) {
    // Figure 1 runs all 13 kernels on the baseline; representative: Gibbs.
    bench_unit(c, "fig01_ipc_unit", "Gibbs", PimMode::Baseline);
}
fn bench_fig02(c: &mut Criterion) {
    bench_unit(c, "fig02_breakdown_unit", "BFS", PimMode::Baseline);
}
fn bench_fig04(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04_plain_atomics_unit");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter_batched(
            ctx,
            |ctx| criterion::black_box(ctx.metrics_plain_atomics("DC")),
            criterion::BatchSize::PerIteration,
        )
    });
    g.finish();
}
fn bench_fig07(c: &mut Criterion) {
    bench_unit(c, "fig07_speedup_unit", "DC", PimMode::GraphPim);
}
fn bench_fig09(c: &mut Criterion) {
    bench_unit(c, "fig09_breakdown_unit", "CComp", PimMode::Baseline);
}
fn bench_fig10(c: &mut Criterion) {
    bench_unit(c, "fig10_candidates_unit", "SSSP", PimMode::Baseline);
}
fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_fu_sweep_unit");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter_batched(
            ctx,
            |ctx| {
                let size = ctx.size();
                criterion::black_box(ctx.metrics_at("DC", PimMode::GraphPim, size, 1, 10))
            },
            criterion::BatchSize::PerIteration,
        )
    });
    g.finish();
}
fn bench_fig12(c: &mut Criterion) {
    bench_unit(c, "fig12_bandwidth_unit", "BFS", PimMode::GraphPim);
}
fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_linkbw_unit");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter_batched(
            ctx,
            |ctx| {
                let size = ctx.size();
                criterion::black_box(ctx.metrics_at("BFS", PimMode::GraphPim, size, 16, 5))
            },
            criterion::BatchSize::PerIteration,
        )
    });
    g.finish();
}
fn bench_fig14(c: &mut Criterion) {
    bench_unit(c, "fig14_size_unit", "CComp", PimMode::GraphPim);
}
fn bench_fig15(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_energy_unit");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter_batched(
            ctx,
            |ctx| {
                let m = ctx.metrics("DC", PimMode::GraphPim);
                criterion::black_box(graphpim::energy::uncore_energy(&m, 2.0, 32, 16))
            },
            criterion::BatchSize::PerIteration,
        )
    });
    g.finish();
}
fn bench_fig16(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_analytic_unit");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter_batched(
            ctx,
            |ctx| {
                let m = ctx.metrics("BFS", PimMode::Baseline);
                criterion::black_box(graphpim::analytic::AnalyticalModel::from_baseline(&m, 9.0))
            },
            criterion::BatchSize::PerIteration,
        )
    });
    g.finish();
}
fn bench_fig17(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17_apps_unit");
    g.sample_size(10);
    std::env::set_var("GRAPHPIM_APP_SCALE", "9");
    g.bench_function("run", |b| {
        b.iter(|| criterion::black_box(graphpim::experiments::fig17::run()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_fig01,
    bench_fig02,
    bench_fig04,
    bench_fig07,
    bench_fig09,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15,
    bench_fig16,
    bench_fig17
);
criterion_main!(benches);
