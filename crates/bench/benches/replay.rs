//! Live execution vs trace replay: the speedup the trace store buys per
//! sweep point on a mid-size LDBC graph.
//!
//! `live` is the full pipeline (functional kernel execution feeding the
//! timing models); `replay` drives a pre-captured binary trace through
//! the same timing models; `capture` is the one-time functional-only
//! cost a cold store pays before its first replay.

use criterion::{criterion_group, criterion_main, Criterion};
use graphpim::config::{PimMode, SystemConfig};
use graphpim::system::SystemSim;
use graphpim::tracestore::capture_kernel;
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_workloads::kernels::Bfs;

fn bench_live_vs_replay(c: &mut Criterion) {
    let graph = GraphSpec::ldbc(LdbcSize::K10).seed(7).build();
    let config = SystemConfig::hpca(PimMode::GraphPim);
    let trace = capture_kernel(&mut Bfs::new(0), &graph, config.sim.core.cores);

    let mut group = c.benchmark_group("trace_replay_bfs_ldbc10k");
    group.sample_size(10);
    group.bench_function("live", |b| {
        b.iter(|| {
            criterion::black_box(SystemSim::run_kernel(&mut Bfs::new(0), &graph, &config));
        });
    });
    group.bench_function("replay", |b| {
        b.iter(|| {
            criterion::black_box(SystemSim::run_replayed(&trace, &config).expect("valid trace"));
        });
    });
    group.bench_function("capture", |b| {
        b.iter(|| {
            criterion::black_box(capture_kernel(
                &mut Bfs::new(0),
                &graph,
                config.sim.core.cores,
            ));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_live_vs_replay);
criterion_main!(benches);
