//! Criterion micro-benchmark for the telemetry counter sink: indexed
//! `CounterRegistry::record` versus the linear scan it replaced.
//!
//! The hot pattern is a sweep re-recording the same few hundred dotted
//! keys (e.g. `hmc.vaultNN.*`) once per run snapshot; the linear scan
//! made that quadratic in the key count.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graphpim_sim::telemetry::{CounterRegistry, Telemetry};

/// The pre-index `CounterRegistry`: records by scanning the entry list.
#[derive(Default)]
struct LinearRegistry {
    entries: Vec<(String, f64)>,
}

impl Telemetry for LinearRegistry {
    fn record(&mut self, key: &str, value: f64) {
        if let Some((_, v)) = self.entries.iter_mut().find(|(k, _)| k == key) {
            *v = value;
        } else {
            self.entries.push((key.to_string(), value));
        }
    }
}

/// A realistic key set: per-vault HMC counters plus core/cache summaries.
fn keys() -> Vec<String> {
    let mut keys = Vec::new();
    for vault in 0..32 {
        for stat in ["dram_accesses", "atomics", "queue_wait.p99", "fu_busy.mean"] {
            keys.push(format!("hmc.vault{vault:02}.{stat}"));
        }
    }
    for stat in [
        "core.instructions",
        "core.cycles",
        "cache.l1_hits",
        "cache.l2_hits",
        "cache.l3_hits",
        "attrib.core.busy",
        "attrib.hmc.total",
    ] {
        keys.push(stat.to_string());
    }
    keys
}

fn bench_record(c: &mut Criterion) {
    let keys = keys();
    // 8 snapshot rounds over the full key set — every round past the
    // first re-records existing keys, the case the index accelerates.
    const ROUNDS: u64 = 8;
    let mut group = c.benchmark_group("counter_registry_record");
    group.throughput(Throughput::Elements(ROUNDS * keys.len() as u64));
    group.bench_function("indexed", |b| {
        b.iter(|| {
            let mut registry = CounterRegistry::default();
            for round in 0..ROUNDS {
                for key in &keys {
                    registry.record(key, round as f64);
                }
            }
            criterion::black_box(registry);
        });
    });
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            let mut registry = LinearRegistry::default();
            for round in 0..ROUNDS {
                for key in &keys {
                    registry.record(key, round as f64);
                }
            }
            criterion::black_box(registry.entries.len());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_record);
criterion_main!(benches);
