//! Criterion micro-benchmarks of the substrate components: how fast the
//! simulator itself runs (simulation throughput, not simulated time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_sim::config::SimConfig;
use graphpim_sim::hmc::{HmcAtomicOp, HmcCube, PacketKind};
use graphpim_sim::mem::hierarchy::CacheHierarchy;

fn bench_cache_hierarchy(c: &mut Criterion) {
    let config = SimConfig::hpca_default();
    let mut group = c.benchmark_group("cache_hierarchy");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("random_access_16way", |b| {
        let mut h = CacheHierarchy::new(&config.cache, 16);
        let mut x = 0x9E3779B97F4A7C15u64;
        b.iter(|| {
            for i in 0..10_000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                h.access((i % 16) as usize, x % (1 << 28), x & 4 == 0);
            }
        });
    });
    group.finish();
}

fn bench_hmc_cube(c: &mut Criterion) {
    let config = SimConfig::hpca_default();
    let mut group = c.benchmark_group("hmc_cube");
    group.throughput(Throughput::Elements(10_000));
    for kind in [
        ("read64", PacketKind::Read64),
        ("atomic_cas", PacketKind::Atomic(HmcAtomicOp::CasIfEqual8)),
        ("atomic_add", PacketKind::Atomic(HmcAtomicOp::Add16)),
    ] {
        group.bench_with_input(BenchmarkId::new("service", kind.0), &kind.1, |b, &pkt| {
            let mut cube = HmcCube::new(&config.hmc, 2.0);
            let mut now = 0.0;
            let mut addr = 0u64;
            b.iter(|| {
                for _ in 0..10_000 {
                    addr = addr.wrapping_add(0x4851);
                    now += 0.5;
                    criterion::black_box(cube.service(pkt, addr % (1 << 30), now));
                }
            });
        });
    }
    group.finish();
}

fn bench_atomic_semantics(c: &mut Criterion) {
    let mut group = c.benchmark_group("hmc_atomic_execute");
    group.throughput(Throughput::Elements(18));
    group.bench_function("all_18_commands", |b| {
        let mut mem = 0xDEAD_BEEFu128;
        b.iter(|| {
            for op in HmcAtomicOp::HMC20_SET {
                criterion::black_box(op.execute(&mut mem, 0x1234_5678));
            }
        });
    });
    group.finish();
}

fn bench_graph_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_generation");
    group.sample_size(10);
    group.bench_function("ldbc_1k", |b| {
        b.iter(|| GraphSpec::ldbc(LdbcSize::K1).seed(1).build())
    });
    group.bench_function("rmat_s12_e8", |b| {
        b.iter(|| GraphSpec::rmat(12, 8).seed(1).build())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache_hierarchy,
    bench_hmc_cube,
    bench_atomic_semantics,
    bench_graph_generation
);
criterion_main!(benches);
