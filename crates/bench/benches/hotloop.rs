//! Hot-loop microbenchmarks: per-op cost of the decoded-trace replay
//! path, and the one-time decode cost it amortizes.
//!
//! `decode` measures `DecodedTrace::decode` (varint frames -> flat op
//! buffer, done once per workload by the engine); `replay/<kernel>`
//! measures `SystemSim::run_decoded` over the pre-decoded buffer — the
//! loop every figure sweep spends its time in. Throughput is reported
//! in trace ops so regressions show up as ns/op, independent of trace
//! length. Use the min column: the mean soaks up scheduler noise on
//! small CI boxes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graphpim::config::{PimMode, SystemConfig};
use graphpim::system::SystemSim;
use graphpim::tracestore::capture_kernel;
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_sim::trace::codec::DecodedTrace;
use graphpim_workloads::kernels::{by_name, KernelParams};

fn capture(name: &str) -> Vec<u8> {
    let graph = GraphSpec::ldbc(LdbcSize::K1).seed(7).build();
    let mut params = KernelParams::scaled_for(graph.vertex_count());
    params.root = 0;
    let mut kernel = by_name(name, params).expect("known kernel");
    capture_kernel(kernel.as_mut(), &graph, 16)
}

fn bench_decode(c: &mut Criterion) {
    let bytes = capture("PRank");
    let ops = DecodedTrace::decode(&bytes)
        .expect("valid trace")
        .op_count() as u64;
    let mut group = c.benchmark_group("hotloop_decode");
    group.sample_size(20);
    group.throughput(Throughput::Elements(ops));
    group.bench_function("PRank", |b| {
        b.iter(|| criterion::black_box(DecodedTrace::decode(&bytes).expect("valid trace")));
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    for kernel in ["BFS", "PRank"] {
        let bytes = capture(kernel);
        let decoded = DecodedTrace::decode(&bytes).expect("valid trace");
        let mut group = c.benchmark_group(format!("hotloop_replay_{kernel}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(decoded.op_count() as u64));
        for mode in PimMode::ALL {
            let config = SystemConfig::hpca(mode);
            group.bench_function(&format!("{mode:?}"), |b| {
                b.iter(|| criterion::black_box(SystemSim::run_decoded(&decoded, &config)));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_decode, bench_replay);
criterion_main!(benches);
